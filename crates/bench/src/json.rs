//! Minimal JSON value type, writer and parser.
//!
//! The workspace is offline and dependency-free beyond the vendored
//! shims, so the BENCH run reports use this ~200-line hand-rolled JSON
//! layer instead of serde: an order-preserving [`Json`] tree, a
//! pretty-printer, and a recursive-descent parser used by the report
//! validator and the smoke tests.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order (reports are diffed by
/// humans, so stable key order matters).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (non-finite values serialise as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (ordered key/value pairs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Serialise with 2-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    if *x == x.trunc() && x.abs() < 1e15 {
                        let _ = write!(out, "{}", *x as i64);
                    } else {
                        let _ = write!(out, "{x}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (must consume the whole input).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(b, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let val = parse_value(b, pos)?;
                members.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

/// Convenience: build an object from pairs.
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let doc = obj(vec![
            ("name", Json::Str("f4 \"toy\"\n".to_string())),
            ("n", Json::Num(256.0)),
            ("rate", Json::Num(1.25e6)),
            ("neg", Json::Num(-0.5)),
            ("ok", Json::Bool(true)),
            ("missing", Json::Null),
            (
                "phases",
                Json::Arr(vec![
                    obj(vec![
                        ("name", Json::Str("halo".into())),
                        ("s", Json::Num(0.125)),
                    ]),
                    Json::Arr(vec![]),
                ]),
            ),
            ("empty", Json::Obj(vec![])),
        ]);
        let text = doc.pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("n").unwrap().as_f64(), Some(256.0));
        assert_eq!(back.get("name").unwrap().as_str(), Some("f4 \"toy\"\n"));
    }

    #[test]
    fn parses_plain_json() {
        let v = Json::parse(r#" {"a": [1, 2.5, "x", null, {"b": false}], "c": 1e3} "#).unwrap();
        assert_eq!(v.get("c").unwrap().as_f64(), Some(1000.0));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 5);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(Json::Num(42.0).pretty().trim(), "42");
        assert_eq!(Json::Num(0.5).pretty().trim(), "0.5");
    }
}
