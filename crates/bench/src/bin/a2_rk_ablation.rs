//! A2 — Time-integrator ablation.
//!
//! SSP-RK order vs accuracy and cost on the smooth density wave (where
//! temporal error is visible) and on Sod (where the spatial shock error
//! dominates). Reports L1(ρ) and zone-updates (∝ cost).
//!
//! Expected shape: on smooth flow RK1 is unstable-or-inaccurate, RK3
//! clearly better than RK2 at ~1.5× the cost; on Sod all orders give
//! nearly the same error (shock-limited), so RK2 is the cost-effective
//! choice there.

use rhrsc_bench::{sci, Table};
use rhrsc_grid::PatchGeom;
use rhrsc_solver::diag::l1_density_error;
use rhrsc_solver::problems::Problem;
use rhrsc_solver::scheme::init_cons;
use rhrsc_solver::{PatchSolver, RkOrder, Scheme};

fn main() {
    println!("# A2: Runge-Kutta order ablation, ppm + hllc, N = 256");
    let n = 256;
    let mut table = Table::new(&["problem", "rk", "cfl", "L1(rho)", "zone_updates"]);
    for (prob, t_end) in [
        (Problem::density_wave(0.5, 0.3), 0.8),
        (Problem::sod(), 0.4),
    ] {
        for rk in RkOrder::ALL {
            // RK1 with a high-order spatial scheme needs a reduced CFL to
            // stay stable; use the standard practical values.
            let cfl = match rk {
                RkOrder::Rk1 => 0.15,
                RkOrder::Rk2 => 0.4,
                RkOrder::Rk3 => 0.4,
            };
            let scheme = Scheme::default_with_gamma(5.0 / 3.0);
            let geom = PatchGeom::line(n, 0.0, 1.0, scheme.required_ghosts());
            let mut u = init_cons(geom, &scheme.eos, &|x| (prob.ic)(x));
            let mut solver = PatchSolver::new(scheme, prob.bcs, rk, geom);
            match solver.advance_to(&mut u, 0.0, t_end, cfl, None) {
                Ok(_) => {
                    let exact = prob.exact.clone().unwrap();
                    let (l1, _) = l1_density_error(&scheme, &u, &exact, t_end).unwrap();
                    table.row(&[
                        prob.name.clone(),
                        format!("{rk:?}"),
                        format!("{cfl}"),
                        sci(l1),
                        solver.stats().zone_updates.to_string(),
                    ]);
                }
                Err(e) => {
                    table.row(&[
                        prob.name.clone(),
                        format!("{rk:?}"),
                        format!("{cfl}"),
                        format!("unstable: {e}").chars().take(24).collect(),
                        solver.stats().zone_updates.to_string(),
                    ]);
                }
            }
        }
    }
    table.print();
    table.save_csv("a2_rk_ablation");
}
