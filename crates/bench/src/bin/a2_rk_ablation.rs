//! A2 — Time-integrator ablation.
//!
//! SSP-RK order vs accuracy and cost on the smooth density wave (where
//! temporal error is visible) and on Sod (where the spatial shock error
//! dominates). Reports L1(ρ) and zone-updates (∝ cost).
//!
//! Expected shape: on smooth flow RK1 is unstable-or-inaccurate, RK3
//! clearly better than RK2 at ~1.5× the cost; on Sod all orders give
//! nearly the same error (shock-limited), so RK2 is the cost-effective
//! choice there.

use rhrsc_bench::{print_phase_table, sci, BenchOpts, RunReport, Table};
use rhrsc_grid::PatchGeom;
use rhrsc_runtime::Registry;
use rhrsc_solver::diag::l1_density_error;
use rhrsc_solver::problems::Problem;
use rhrsc_solver::scheme::init_cons;
use rhrsc_solver::{PatchSolver, RkOrder, Scheme};
use std::time::Instant;

fn main() {
    let opts = BenchOpts::from_args();
    let n = if opts.toy { 64 } else { 256 };
    println!("# A2: Runge-Kutta order ablation, ppm + hllc, N = {n}");
    let reg = Registry::new();
    let bench_t0 = Instant::now();
    let mut table = Table::new(&["problem", "rk", "cfl", "L1(rho)", "zone_updates"]);
    for (prob, t_end) in [
        (Problem::density_wave(0.5, 0.3), 0.8),
        (Problem::sod(), 0.4),
    ] {
        for rk in RkOrder::ALL {
            // RK1 with a high-order spatial scheme needs a reduced CFL to
            // stay stable; use the standard practical values.
            let cfl = match rk {
                RkOrder::Rk1 => 0.15,
                RkOrder::Rk2 => 0.4,
                RkOrder::Rk3 => 0.4,
            };
            let scheme = Scheme::default_with_gamma(5.0 / 3.0);
            let geom = PatchGeom::line(n, 0.0, 1.0, scheme.required_ghosts());
            let mut u = init_cons(geom, &scheme.eos, &|x| (prob.ic)(x));
            let mut solver = PatchSolver::new(scheme, prob.bcs, rk, geom);
            let t0 = Instant::now();
            let outcome = solver.advance_to(&mut u, 0.0, t_end, cfl, None);
            reg.histogram("phase.advance")
                .record(t0.elapsed().as_nanos() as u64);
            match outcome {
                Ok(_) => {
                    let exact = prob.exact.clone().unwrap();
                    let (l1, _) = l1_density_error(&scheme, &u, &exact, t_end).unwrap();
                    table.row(&[
                        prob.name.clone(),
                        format!("{rk:?}"),
                        format!("{cfl}"),
                        sci(l1),
                        solver.stats().zone_updates.to_string(),
                    ]);
                }
                Err(e) => {
                    table.row(&[
                        prob.name.clone(),
                        format!("{rk:?}"),
                        format!("{cfl}"),
                        format!("unstable: {e}").chars().take(24).collect(),
                        solver.stats().zone_updates.to_string(),
                    ]);
                }
            }
        }
    }
    table.print();
    table.save_csv("a2_rk_ablation");
    let snap = reg.snapshot();
    if opts.profile {
        print_phase_table("a2_rk_ablation", &snap);
    }
    RunReport::new("a2_rk_ablation")
        .config_str("problem", "density-wave + sod, ppm + hllc")
        .config_num("n", n as f64)
        .wall_time(bench_t0.elapsed().as_secs_f64())
        .parallelism(1.0)
        .write(&snap);
}
