//! F9 — Offload staging strategies.
//!
//! Accelerator offload only pays when data stays resident: staging the
//! state over the host↔device link every step drowns the kernel speedup
//! in transfer time. This experiment advances the same 2D patch 20 steps
//! under three strategies and reports modeled time per step:
//!
//! * **host** — no offload (wall-clock, serial host),
//! * **staged** — upload + step-kernel + download every step (what a
//!   naive port does),
//! * **resident** — upload once, pipeline all step kernels, download once
//!   (what the paper-era codes do).
//!
//! Expected shape: staging overhead grows with the state size and shrinks
//! with link bandwidth — with a slow link, per-step staging erodes most
//! of the kernel speedup that residency preserves. The table sweeps both
//! patch size and link bandwidth.
//!
//! Flags: `--toy` shrinks the sweep for smoke tests/CI, `--profile`
//! prints the device phase breakdown (H2D/D2H staging vs launch time).
//! A machine-readable report is always written to
//! `results/BENCH_f9_offload_staging.json`.

use rhrsc_bench::{f3, print_phase_table, BenchOpts, RunReport, Table};
use rhrsc_grid::{bc, Bc, PatchGeom};
use rhrsc_runtime::{AcceleratorConfig, Registry};
use rhrsc_solver::device_backend::DevicePatchSolver;
use rhrsc_solver::scheme::init_cons;
use rhrsc_solver::{PatchSolver, RkOrder, Scheme};
use rhrsc_srhd::Prim;
use std::sync::Arc;
use std::time::Duration;

fn ic(x: [f64; 3]) -> Prim {
    let r2 = (x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2);
    Prim::at_rest(1.0, if r2 < 0.02 { 20.0 } else { 1.0 })
}

fn dev_cfg(bandwidth: f64) -> AcceleratorConfig {
    AcceleratorConfig {
        compute_threads: 1,
        launch_overhead: Duration::from_micros(200),
        copy_bandwidth: bandwidth,
        throughput_multiplier: 8.0,
        name: "sim-gpu".to_string(),
    }
}

fn main() {
    let opts = BenchOpts::from_args();
    let (sizes, bandwidths, nsteps): (&[usize], &[f64], usize) = if opts.toy {
        (&[32], &[8e9], 5)
    } else {
        (&[64, 128, 256], &[8e9, 1e9], 20)
    };
    println!("# F9: offload staging strategies, 2D RK2, {nsteps} steps");
    println!("#     device: 8x kernels, 200us launch; link bandwidth swept");
    let scheme = Scheme::default_with_gamma(5.0 / 3.0);
    let bcs = bc::uniform(Bc::Periodic);
    let dt = 2e-4;
    let reg = Arc::new(Registry::new());
    let mut wall_total = 0.0;
    let mut zu_total = 0.0;

    let mut table = Table::new(&[
        "patch",
        "link_GB/s",
        "host_ms/step",
        "staged_ms/step",
        "resident_ms/step",
        "staging_penalty",
    ]);
    for &n in sizes {
        let geom = PatchGeom::rect([n, n], [0.0; 2], [1.0; 2], scheme.required_ghosts());
        let u0 = init_cons(geom, &scheme.eos, &ic);
        let zu_run = (n * n * 2 * nsteps) as f64; // interior cells × RK2 stages × steps

        // Host wall-clock.
        let mut u = u0.clone();
        let mut host = PatchSolver::new(scheme, bcs, RkOrder::Rk2, geom);
        let t0 = std::time::Instant::now();
        for _ in 0..nsteps {
            host.step(&mut u, dt, None).unwrap();
        }
        let host_ms = t0.elapsed().as_secs_f64() * 1e3 / nsteps as f64;
        wall_total += t0.elapsed().as_secs_f64();
        zu_total += zu_run;
        let u_host = u;

        for &bw in bandwidths {
            // Staged: upload + kernel + download every step (device clock).
            let dev = DevicePatchSolver::new(dev_cfg(bw), scheme, bcs, RkOrder::Rk2, geom);
            dev.set_metrics(reg.clone());
            let mut u = u0.clone();
            let v0 = dev.device_time();
            for _ in 0..nsteps {
                dev.upload(&u).get();
                dev.enqueue_step(dt);
                u = dev.download();
            }
            let staged_ms = (dev.device_time() - v0).as_secs_f64() * 1e3 / nsteps as f64;
            wall_total += dev.device_time().as_secs_f64();
            zu_total += zu_run;
            assert_eq!(u.raw(), u_host.raw(), "staged result must match host");

            // Resident: upload once, pipeline, download once.
            let dev = DevicePatchSolver::new(dev_cfg(bw), scheme, bcs, RkOrder::Rk2, geom);
            dev.set_metrics(reg.clone());
            dev.upload(&u0).get();
            let v0 = dev.device_time();
            for _ in 0..nsteps {
                dev.enqueue_step(dt);
            }
            let u = dev.download();
            let resident_ms = (dev.device_time() - v0).as_secs_f64() * 1e3 / nsteps as f64;
            wall_total += dev.device_time().as_secs_f64();
            zu_total += zu_run;
            assert_eq!(u.raw(), u_host.raw(), "resident result must match host");

            table.row(&[
                format!("{n}x{n}"),
                f3(bw / 1e9),
                f3(host_ms),
                f3(staged_ms),
                f3(resident_ms),
                f3(staged_ms / resident_ms),
            ]);
        }
    }
    table.print();
    table.save_csv("f9_offload_staging");

    let snap = reg.snapshot();
    if opts.profile {
        print_phase_table("f9_offload_staging (device queue, all runs pooled)", &snap);
    }
    RunReport::new("f9_offload_staging")
        .config_str("device", "sim-gpu (8x kernels, 200us launch)")
        .config_num("nsteps", nsteps as f64)
        .config_num("max_n", *sizes.last().unwrap() as f64)
        .config_str("clock", "device-modeled + host wall")
        .wall_time(wall_total)
        .parallelism(1.0)
        .zone_updates(zu_total)
        .write(&snap);
}
