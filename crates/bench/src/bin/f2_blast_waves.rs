//! F2 — Relativistic blast-wave profile figures (Martí–Müller 1 & 2).
//!
//! Regenerates the density/velocity/pressure profiles of both standard
//! blast-wave problems against the exact solution, at N = 400 and N = 800
//! (problem 2 needs the finer grid to resolve its thin shell). `--toy`
//! drops to N = 100/200.
//!
//! Expected shape: problem 1's shell (ρ* ≈ 9.2 ahead of the contact at
//! x ≈ 0.83) captured within a few zones; problem 2's much thinner shell
//! under-resolved at the coarse resolution (peak density below exact),
//! improving at the fine one.

use rhrsc_bench::{print_phase_table, results_dir, sci, BenchOpts, RunReport, Table};
use rhrsc_grid::PatchGeom;
use rhrsc_runtime::Registry;
use rhrsc_solver::diag::l1_density_error;
use rhrsc_solver::problems::Problem;
use rhrsc_solver::scheme::{init_cons, prim_at};
use rhrsc_solver::{PatchSolver, RkOrder, Scheme};
use std::io::Write;
use std::time::Instant;

fn main() {
    let opts = BenchOpts::from_args();
    let ns: [usize; 2] = if opts.toy { [100, 200] } else { [400, 800] };
    println!("# F2: Marti-Muller blast waves 1 & 2, ppm+hllc+rk3, N = {ns:?}");
    let reg = Registry::new();
    let bench_t0 = Instant::now();
    let mut zone_updates = 0u64;
    let mut table = Table::new(&["problem", "N", "L1(rho)", "rho_peak", "rho_peak_exact"]);
    for prob in [Problem::blast_wave_1(), Problem::blast_wave_2()] {
        for n in ns {
            let scheme = Scheme::default_with_gamma(5.0 / 3.0);
            let geom = PatchGeom::line(n, 0.0, 1.0, scheme.required_ghosts());
            let mut u = init_cons(geom, &scheme.eos, &|x| (prob.ic)(x));
            let mut solver = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk3, geom);
            let t0 = Instant::now();
            solver
                .advance_to(&mut u, 0.0, prob.t_end, 0.4, None)
                .unwrap();
            reg.histogram("phase.advance")
                .record(t0.elapsed().as_nanos() as u64);
            zone_updates += solver.stats().zone_updates;
            let exact = prob.exact.clone().unwrap();
            let (l1, prim) = l1_density_error(&scheme, &u, &exact, prob.t_end).unwrap();

            let mut rho_peak = 0.0f64;
            let mut rho_peak_exact = 0.0f64;
            let path = results_dir().join(format!("f2_{}_n{}.csv", prob.name, n));
            let mut f = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
            writeln!(f, "x,rho,vx,p,rho_exact,vx_exact,p_exact").unwrap();
            for (i, j, k) in geom.interior_iter() {
                let x = geom.center(i, j, k);
                let w = prim_at(&prim, i, j, k);
                let ex = exact(x, prob.t_end);
                rho_peak = rho_peak.max(w.rho);
                rho_peak_exact = rho_peak_exact.max(ex.rho);
                writeln!(
                    f,
                    "{},{},{},{},{},{},{}",
                    x[0], w.rho, w.vel[0], w.p, ex.rho, ex.vel[0], ex.p
                )
                .unwrap();
            }
            println!("  -> wrote {}", path.display());
            table.row(&[
                prob.name.clone(),
                n.to_string(),
                sci(l1),
                format!("{rho_peak:.3}"),
                format!("{rho_peak_exact:.3}"),
            ]);
        }
    }
    table.print();
    table.save_csv("f2_blast_waves");
    let snap = reg.snapshot();
    if opts.profile {
        print_phase_table("f2_blast_waves", &snap);
    }
    RunReport::new("f2_blast_waves")
        .config_str("problem", "blast1 + blast2, ppm + hllc + rk3")
        .config_num("n_coarse", ns[0] as f64)
        .config_num("n_fine", ns[1] as f64)
        .wall_time(bench_t0.elapsed().as_secs_f64())
        .parallelism(1.0)
        .zone_updates(zone_updates as f64)
        .write(&snap);
}
