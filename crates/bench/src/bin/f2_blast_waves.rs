//! F2 — Relativistic blast-wave profile figures (Martí–Müller 1 & 2).
//!
//! Regenerates the density/velocity/pressure profiles of both standard
//! blast-wave problems against the exact solution, at N = 400 and N = 800
//! (problem 2 needs the finer grid to resolve its thin shell).
//!
//! Expected shape: problem 1's shell (ρ* ≈ 9.2 ahead of the contact at
//! x ≈ 0.83) captured within a few zones; problem 2's much thinner shell
//! under-resolved at N = 400 (peak density below exact), improving at 800.

use rhrsc_bench::{results_dir, sci, Table};
use rhrsc_grid::PatchGeom;
use rhrsc_solver::diag::l1_density_error;
use rhrsc_solver::problems::Problem;
use rhrsc_solver::scheme::{init_cons, prim_at};
use rhrsc_solver::{PatchSolver, RkOrder, Scheme};
use std::io::Write;

fn main() {
    println!("# F2: Marti-Muller blast waves 1 & 2, ppm+hllc+rk3");
    let mut table = Table::new(&["problem", "N", "L1(rho)", "rho_peak", "rho_peak_exact"]);
    for prob in [Problem::blast_wave_1(), Problem::blast_wave_2()] {
        for n in [400usize, 800] {
            let scheme = Scheme::default_with_gamma(5.0 / 3.0);
            let geom = PatchGeom::line(n, 0.0, 1.0, scheme.required_ghosts());
            let mut u = init_cons(geom, &scheme.eos, &|x| (prob.ic)(x));
            let mut solver = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk3, geom);
            solver
                .advance_to(&mut u, 0.0, prob.t_end, 0.4, None)
                .unwrap();
            let exact = prob.exact.clone().unwrap();
            let (l1, prim) = l1_density_error(&scheme, &u, &exact, prob.t_end).unwrap();

            let mut rho_peak = 0.0f64;
            let mut rho_peak_exact = 0.0f64;
            let path = results_dir().join(format!("f2_{}_n{}.csv", prob.name, n));
            let mut f = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
            writeln!(f, "x,rho,vx,p,rho_exact,vx_exact,p_exact").unwrap();
            for (i, j, k) in geom.interior_iter() {
                let x = geom.center(i, j, k);
                let w = prim_at(&prim, i, j, k);
                let ex = exact(x, prob.t_end);
                rho_peak = rho_peak.max(w.rho);
                rho_peak_exact = rho_peak_exact.max(ex.rho);
                writeln!(
                    f,
                    "{},{},{},{},{},{},{}",
                    x[0], w.rho, w.vel[0], w.p, ex.rho, ex.vel[0], ex.p
                )
                .unwrap();
            }
            println!("  -> wrote {}", path.display());
            table.row(&[
                prob.name.clone(),
                n.to_string(),
                sci(l1),
                format!("{rho_peak:.3}"),
                format!("{rho_peak_exact:.3}"),
            ]);
        }
    }
    table.print();
    table.save_csv("f2_blast_waves");
}
