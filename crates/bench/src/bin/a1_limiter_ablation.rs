//! A1 — Slope-limiter ablation.
//!
//! PLM's limiter choice trades sharpness against oscillation safety. This
//! ablation runs Sod and blast wave 1 at N = 400 with each limiter
//! (plus PPM and CENO3 for context) and reports L1(ρ) vs exact and the
//! total-variation overshoot of the density profile.
//!
//! Expected shape: minmod most diffusive (largest L1, zero overshoot),
//! MC sharpest of the TVD limiters; PPM/CENO3 better than all PLM
//! variants on these problems.

use rhrsc_bench::{print_phase_table, sci, BenchOpts, RunReport, Table};
use rhrsc_grid::PatchGeom;
use rhrsc_runtime::Registry;
use rhrsc_solver::diag::l1_density_error;
use rhrsc_solver::problems::Problem;
use rhrsc_solver::scheme::init_cons;
use rhrsc_solver::{PatchSolver, RkOrder, Scheme};
use rhrsc_srhd::recon::{Limiter, Recon};
use std::time::Instant;

/// Total-variation overshoot: TV(numerical) − TV(exact), positive when
/// the scheme rings.
fn tv_excess(prim: &rhrsc_grid::Field, prob: &Problem) -> f64 {
    let geom = prim.geom();
    let exact = prob.exact.as_ref().unwrap();
    let g = geom.ng_of(0);
    let mut tv_num = 0.0;
    let mut tv_exact = 0.0;
    let mut prev_n: Option<f64> = None;
    let mut prev_e: Option<f64> = None;
    for i in g..g + geom.n[0] {
        let x = geom.center(i, 0, 0);
        let num = prim.at(0, i, 0, 0);
        let ex = exact(x, prob.t_end).rho;
        if let (Some(pn), Some(pe)) = (prev_n, prev_e) {
            tv_num += (num - pn).abs();
            tv_exact += (ex - pe).abs();
        }
        prev_n = Some(num);
        prev_e = Some(ex);
    }
    tv_num - tv_exact
}

fn main() {
    let opts = BenchOpts::from_args();
    let n = if opts.toy { 100 } else { 400 };
    println!("# A1: slope-limiter ablation, N = {n}, hllc + rk3");
    let reg = Registry::new();
    let bench_t0 = Instant::now();
    let recons = [
        Recon::Plm(Limiter::Minmod),
        Recon::Plm(Limiter::VanLeer),
        Recon::Plm(Limiter::Mc),
        Recon::Ceno3,
        Recon::Ppm,
    ];
    let mut table = Table::new(&["problem", "recon", "L1(rho)", "TV_excess"]);
    for prob in [Problem::sod(), Problem::blast_wave_1()] {
        for recon in recons {
            let scheme = Scheme {
                recon,
                ..Scheme::default_with_gamma(5.0 / 3.0)
            };
            let geom = PatchGeom::line(n, 0.0, 1.0, scheme.required_ghosts());
            let mut u = init_cons(geom, &scheme.eos, &|x| (prob.ic)(x));
            let mut solver = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk3, geom);
            let t0 = Instant::now();
            solver
                .advance_to(&mut u, 0.0, prob.t_end, 0.4, None)
                .unwrap();
            reg.histogram("phase.advance")
                .record(t0.elapsed().as_nanos() as u64);
            let exact = prob.exact.clone().unwrap();
            let (l1, prim) = l1_density_error(&scheme, &u, &exact, prob.t_end).unwrap();
            table.row(&[
                prob.name.clone(),
                recon.name().to_string(),
                sci(l1),
                format!("{:+.4}", tv_excess(&prim, &prob)),
            ]);
        }
    }
    table.print();
    table.save_csv("a1_limiter_ablation");
    let snap = reg.snapshot();
    if opts.profile {
        print_phase_table("a1_limiter_ablation", &snap);
    }
    RunReport::new("a1_limiter_ablation")
        .config_str("problem", "sod + blast1, hllc + rk3")
        .config_num("n", n as f64)
        .config_num("configs", (2 * recons.len()) as f64)
        .wall_time(bench_t0.elapsed().as_secs_f64())
        .parallelism(1.0)
        .write(&snap);
}
