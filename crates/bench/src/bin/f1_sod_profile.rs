//! F1 — Sod shock-tube profile figure.
//!
//! Regenerates the (x, ρ, v, p) series at N = 400, t = 0.4 for PPM+HLLC
//! alongside the exact solution (the classic validation figure).
//! `--toy` drops to N = 100 for CI smoke runs.

use rhrsc_bench::{print_phase_table, results_dir, sci, BenchOpts, RunReport};
use rhrsc_grid::PatchGeom;
use rhrsc_runtime::Registry;
use rhrsc_solver::diag::l1_density_error;
use rhrsc_solver::problems::Problem;
use rhrsc_solver::scheme::{init_cons, prim_at};
use rhrsc_solver::{PatchSolver, RkOrder, Scheme};
use std::io::Write;
use std::time::Instant;

fn main() {
    let opts = BenchOpts::from_args();
    let n = if opts.toy { 100 } else { 400 };
    println!("# F1: Sod profile, N = {n}, ppm+hllc+rk3, t = 0.4");
    let reg = Registry::new();
    let bench_t0 = Instant::now();
    let prob = Problem::sod();
    let scheme = Scheme::default_with_gamma(5.0 / 3.0);
    let geom = PatchGeom::line(n, 0.0, 1.0, scheme.required_ghosts());
    let mut u = init_cons(geom, &scheme.eos, &|x| (prob.ic)(x));
    let mut solver = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk3, geom);
    let t0 = Instant::now();
    solver
        .advance_to(&mut u, 0.0, prob.t_end, 0.4, None)
        .unwrap();
    reg.histogram("phase.advance")
        .record(t0.elapsed().as_nanos() as u64);

    let exact = prob.exact.clone().unwrap();
    let (l1, prim) = l1_density_error(&scheme, &u, &exact, prob.t_end).unwrap();
    println!("  L1(rho) vs exact = {}", sci(l1));

    let path = results_dir().join("f1_sod_profile.csv");
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
    writeln!(f, "x,rho,vx,p,rho_exact,vx_exact,p_exact").unwrap();
    for (i, j, k) in geom.interior_iter() {
        let x = geom.center(i, j, k);
        let w = prim_at(&prim, i, j, k);
        let ex = exact(x, prob.t_end);
        writeln!(
            f,
            "{},{},{},{},{},{},{}",
            x[0], w.rho, w.vel[0], w.p, ex.rho, ex.vel[0], ex.p
        )
        .unwrap();
    }
    println!("  -> wrote {}", path.display());
    let tol = if opts.toy { 2e-2 } else { 5e-3 };
    assert!(l1 < tol, "profile accuracy regression: {l1}");

    let snap = reg.snapshot();
    if opts.profile {
        print_phase_table("f1_sod_profile", &snap);
    }
    RunReport::new("f1_sod_profile")
        .config_str("problem", "sod, ppm + hllc + rk3")
        .config_num("n", n as f64)
        .config_num("l1_rho", l1)
        .wall_time(bench_t0.elapsed().as_secs_f64())
        .parallelism(1.0)
        .zone_updates(solver.stats().zone_updates as f64)
        .write(&snap);
}
