//! F1 — Sod shock-tube profile figure.
//!
//! Regenerates the (x, ρ, v, p) series at N = 400, t = 0.4 for PPM+HLLC
//! alongside the exact solution (the classic validation figure).

use rhrsc_bench::{results_dir, sci};
use rhrsc_grid::PatchGeom;
use rhrsc_solver::diag::l1_density_error;
use rhrsc_solver::problems::Problem;
use rhrsc_solver::scheme::{init_cons, prim_at};
use rhrsc_solver::{PatchSolver, RkOrder, Scheme};
use std::io::Write;

fn main() {
    println!("# F1: Sod profile, N = 400, ppm+hllc+rk3, t = 0.4");
    let n = 400;
    let prob = Problem::sod();
    let scheme = Scheme::default_with_gamma(5.0 / 3.0);
    let geom = PatchGeom::line(n, 0.0, 1.0, scheme.required_ghosts());
    let mut u = init_cons(geom, &scheme.eos, &|x| (prob.ic)(x));
    let mut solver = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk3, geom);
    solver
        .advance_to(&mut u, 0.0, prob.t_end, 0.4, None)
        .unwrap();

    let exact = prob.exact.clone().unwrap();
    let (l1, prim) = l1_density_error(&scheme, &u, &exact, prob.t_end).unwrap();
    println!("  L1(rho) vs exact = {}", sci(l1));

    let path = results_dir().join("f1_sod_profile.csv");
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
    writeln!(f, "x,rho,vx,p,rho_exact,vx_exact,p_exact").unwrap();
    for (i, j, k) in geom.interior_iter() {
        let x = geom.center(i, j, k);
        let w = prim_at(&prim, i, j, k);
        let ex = exact(x, prob.t_end);
        writeln!(
            f,
            "{},{},{},{},{},{},{}",
            x[0], w.rho, w.vel[0], w.p, ex.rho, ex.vel[0], ex.p
        )
        .unwrap();
    }
    println!("  -> wrote {}", path.display());
    assert!(l1 < 5e-3, "profile accuracy regression: {l1}");
}
