//! A3 — Δt-allreduce amortization ablation.
//!
//! The global Δt reduction is the only latency-bound collective in the
//! step. This ablation sweeps the refresh interval (recompute every k
//! steps, coast on 0.9× the cached value in between) on a high-latency
//! virtual cluster and reports the simulated makespan.
//!
//! Expected shape: makespan drops as the allreduce amortizes, with
//! diminishing returns once halo costs dominate; the cached-Δt safety
//! factor costs ~10% more steps at large k (also reported).
//!
//! Every arm runs the *guarded* cadence: coasting steps compare the
//! cached Δt against the freshly scanned local CFL bound, and a
//! violation collapses the AIMD refresh window back to every-step
//! refreshes at the next collective. The per-arm `allreduces` and
//! `violations` columns make the guard's behaviour visible: the AIMD
//! window ramps up from 1 (so large nominal intervals refresh more
//! often than `k` suggests), while on this blast problem the 0.9×
//! safety margin absorbs the bound's drift and violations stay at 0 —
//! the guard is a backstop, not a steady-state cost.

use rhrsc_bench::{print_phase_table, BenchOpts, RunReport, Table};
use rhrsc_comm::{run, NetworkModel};
use rhrsc_grid::{bc, Bc, CartDecomp};
use rhrsc_runtime::Registry;
use rhrsc_solver::driver::{BlockSolver, DistConfig, ExchangeMode};
use rhrsc_solver::{RkOrder, Scheme};
use rhrsc_srhd::Prim;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn ic(x: [f64; 3]) -> Prim {
    let r2 = (x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2);
    Prim::at_rest(1.0, if r2 < 0.01 { 100.0 } else { 1.0 })
}

fn main() {
    let opts = BenchOpts::from_args();
    let (global_n, nsteps, reps) = if opts.toy {
        ([128usize, 64, 1], 8usize, 1usize)
    } else {
        ([512, 256, 1], 20, 3)
    };
    println!(
        "# A3: dt-allreduce amortization, 8 ranks, {}x{} global, 1ms latency, {nsteps} steps",
        global_n[0], global_n[1]
    );
    let model = NetworkModel::virtual_cluster(Duration::from_millis(1), 10e9);
    let reg = Registry::new();
    let bench_t0 = Instant::now();

    let mut table = Table::new(&[
        "refresh_every",
        "makespan_s",
        "speedup_vs_1",
        "allreduces",
        "violations",
    ]);
    let mut base = None;
    for refresh in [1usize, 2, 5, 10, 20] {
        let decomp = CartDecomp {
            dims: [4, 2, 1],
            periodic: [true, true, false],
        };
        let cfg = DistConfig {
            scheme: Scheme::default_with_gamma(5.0 / 3.0),
            rk: RkOrder::Rk2,
            global_n,
            domain: ([0.0; 3], [1.0, 1.0, 1.0]),
            decomp,
            bcs: bc::uniform(Bc::Periodic),
            cfl: 0.4,
            mode: ExchangeMode::BulkSynchronous,
            gang_threads: 0,
            dt_refresh_interval: refresh,
        };
        // Best-of-N against CPU-token measurement noise. The per-arm
        // registry captures how the guarded cadence actually behaved:
        // collective refreshes taken and coast-past-the-bound violations
        // (each of which collapses the AIMD window).
        let arm_reg = Arc::new(Registry::new());
        let mut makespan = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            let stats = run(8, model, |rank| {
                let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
                solver.set_metrics(arm_reg.clone());
                solver.advance_steps(rank, &mut u, nsteps).unwrap()
            });
            reg.histogram("phase.advance")
                .record(t0.elapsed().as_nanos() as u64);
            makespan = makespan.min(stats.iter().map(|s| s.vtime).fold(0.0, f64::max));
        }
        let arm = arm_reg.snapshot();
        let allreduces = arm
            .histograms
            .get("phase.dt.allreduce")
            .map_or(0, |h| h.count);
        let violations = arm
            .counters
            .get("dt.cadence.violation")
            .copied()
            .unwrap_or(0);
        let b = *base.get_or_insert(makespan);
        reg.histogram("dt_refresh.makespan_us")
            .record((makespan * 1e6) as u64);
        reg.histogram("dt_refresh.allreduces").record(allreduces);
        reg.histogram("dt.cadence.violations").record(violations);
        table.row(&[
            refresh.to_string(),
            format!("{makespan:.4}"),
            format!("{:.3}", b / makespan),
            allreduces.to_string(),
            violations.to_string(),
        ]);
    }
    table.print();
    table.save_csv("a3_dt_refresh");
    let snap = reg.snapshot();
    if opts.profile {
        print_phase_table("a3_dt_refresh", &snap);
    }
    RunReport::new("a3_dt_refresh")
        .config_str("problem", "2D blast, 8 ranks, bulk-sync, 1ms latency")
        .config_num("global_nx", global_n[0] as f64)
        .config_num("global_ny", global_n[1] as f64)
        .config_num("steps", nsteps as f64)
        .config_num("reps", reps as f64)
        .wall_time(bench_t0.elapsed().as_secs_f64())
        .parallelism(1.0)
        .write(&snap);
}
