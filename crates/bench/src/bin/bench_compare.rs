//! Bench-regression sentinel: diff current `BENCH_<id>.json` reports
//! against committed baselines with per-metric tolerances.
//!
//! ```text
//! bench_compare <baseline_dir> [current_dir]
//! ```
//!
//! `current_dir` defaults to the `results/` directory (honouring
//! `RHRSC_RESULTS_DIR`, so CI points it at the fresh toy-run output).
//! Exits 0 when every compared metric is within tolerance, 1 on any
//! regression (including a baseline bench missing from the current
//! results), 2 on usage or I/O errors. Reports whose `config` differs
//! from the baseline are skipped with a note — they are not comparable.

use rhrsc_bench::{compare_dirs, results_dir};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(baseline_dir) = args.next().map(PathBuf::from) else {
        eprintln!("usage: bench_compare <baseline_dir> [current_dir]");
        return ExitCode::from(2);
    };
    let current_dir = args.next().map(PathBuf::from).unwrap_or_else(results_dir);

    println!(
        "# Bench regression sentinel: {} vs baseline {}",
        current_dir.display(),
        baseline_dir.display()
    );
    let run = compare_dirs(&baseline_dir, &current_dir);
    run.print();

    if !run.errors.is_empty() {
        return ExitCode::from(2);
    }
    if run.outcomes.is_empty() && run.skipped.is_empty() {
        eprintln!(
            "error: no baseline BENCH_*.json found in {}",
            baseline_dir.display()
        );
        return ExitCode::from(2);
    }
    let regressions = run.regressions();
    if regressions > 0 {
        eprintln!("FAIL: {regressions} metric(s) regressed against baseline");
        ExitCode::from(1)
    } else {
        println!("OK: {} metric(s) within tolerance", run.outcomes.len());
        ExitCode::SUCCESS
    }
}
