//! F3 — Relativistic Kelvin–Helmholtz growth.
//!
//! Single-mode perturbed relativistic shear layer at 64² and 128²,
//! tracking the transverse-momentum RMS. Reports the time series and the
//! fitted linear-phase growth rate per resolution. `--toy` runs only the
//! 32² grid to t = 2 (no rate convergence, just the harness smoke).
//!
//! Expected shape: after an initial acoustic transient (t ≲ 1) the
//! single mode grows exponentially; the fitted rate converges with
//! resolution (finer grids diffuse the thin layer less, so coarse grids
//! under-predict the rate).

use rhrsc_bench::{f3, print_phase_table, BenchOpts, RunReport, Table};
use rhrsc_grid::PatchGeom;
use rhrsc_runtime::Registry;
use rhrsc_solver::diag::transverse_momentum_rms;
use rhrsc_solver::problems::Problem;
use rhrsc_solver::scheme::{init_cons, Scheme};
use rhrsc_solver::{PatchSolver, RkOrder};
use std::io::Write;
use std::time::Instant;

fn main() {
    let opts = BenchOpts::from_args();
    println!("# F3: relativistic KHI growth, shear v = ±0.5, single-mode perturbation");
    let prob = Problem::kelvin_helmholtz(0.5, 0.01);
    let t_end: f64 = if opts.toy { 2.0 } else { 4.0 };
    let n_out = if opts.toy { 16 } else { 32 };
    let resolutions: &[usize] = if opts.toy { &[32] } else { &[64, 128] };
    let reg = Registry::new();
    let bench_t0 = Instant::now();
    let mut zone_updates = 0u64;

    let mut table = Table::new(&["resolution", "growth_rate", "amplification"]);
    let dir = rhrsc_bench::results_dir();
    for &n in resolutions {
        let scheme = Scheme {
            eos: prob.eos,
            ..Scheme::default_with_gamma(4.0 / 3.0)
        };
        let geom = PatchGeom::rect([n, n], [0.0, 0.0], [1.0, 1.0], scheme.required_ghosts());
        let mut u = init_cons(geom, &scheme.eos, &|x| (prob.ic)(x));
        let mut solver = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk3, geom);

        let path = dir.join(format!("f3_khi_n{n}.csv"));
        let mut f = std::io::BufWriter::new(std::fs::File::create(&path).unwrap());
        writeln!(f, "t,sy_rms").unwrap();
        let mut series = Vec::new();
        let t0 = Instant::now();
        for s in 0..=n_out {
            let t_target = t_end * s as f64 / n_out as f64;
            if s > 0 {
                let t_prev = t_end * (s - 1) as f64 / n_out as f64;
                solver
                    .advance_to(&mut u, t_prev, t_target, 0.4, None)
                    .expect("KHI run failed");
            }
            let rms = transverse_momentum_rms(&u);
            series.push((t_target, rms));
            writeln!(f, "{t_target},{rms}").unwrap();
        }
        reg.histogram("phase.advance")
            .record(t0.elapsed().as_nanos() as u64);
        zone_updates += solver.stats().zone_updates;
        println!("  -> wrote {}", path.display());

        // Least-squares fit of ln(rms) over the linear phase.
        let (fit_lo, fit_hi) = if opts.toy { (0.5, 1.9) } else { (1.5, 3.5) };
        let pts: Vec<(f64, f64)> = series
            .iter()
            .filter(|&&(t, a)| t > fit_lo && t < fit_hi && a > 0.0)
            .map(|&(t, a)| (t, a.ln()))
            .collect();
        let nn = pts.len() as f64;
        let sx: f64 = pts.iter().map(|p| p.0).sum();
        let sy: f64 = pts.iter().map(|p| p.1).sum();
        let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
        let rate = (nn * sxy - sx * sy) / (nn * sxx - sx * sx);
        let amp = series.last().unwrap().1 / series.first().unwrap().1.max(1e-300);
        table.row(&[format!("{n}x{n}"), f3(rate), format!("{amp:.1}")]);
    }
    table.print();
    table.save_csv("f3_khi_growth");
    let snap = reg.snapshot();
    if opts.profile {
        print_phase_table("f3_khi_growth", &snap);
    }
    RunReport::new("f3_khi_growth")
        .config_str("problem", "khi shear 0.5, single mode")
        .config_num("t_end", t_end)
        .config_num("resolutions", resolutions.len() as f64)
        .wall_time(bench_t0.elapsed().as_secs_f64())
        .parallelism(1.0)
        .zone_updates(zone_updates as f64)
        .write(&snap);
}
