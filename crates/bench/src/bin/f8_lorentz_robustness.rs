//! F8 — Ultrarelativistic robustness.
//!
//! Boosts the Sod tube to bulk Lorentz factors up to ~160 and runs each
//! scheme combination for a short time, recording whether the run
//! completes (no conservative→primitive failure, no NaN) and the L1(ρ)
//! error against the boosted exact solution.
//!
//! Expected shape: every solver survives moderate boosts; the most
//! diffusive combination (Rusanov+PLM) is the most robust at extreme W
//! while HLLC+WENO5 is the most accurate where it survives.

use rhrsc_bench::{sci, Table};
use rhrsc_grid::PatchGeom;
use rhrsc_solver::diag::{l1_density_error, max_lorentz};
use rhrsc_solver::problems::Problem;
use rhrsc_solver::scheme::init_cons;
use rhrsc_solver::{PatchSolver, RkOrder, Scheme};
use rhrsc_srhd::recon::{Limiter, Recon};
use rhrsc_srhd::riemann::RiemannSolver;

fn main() {
    println!("# F8: boosted Sod tube, N = 200, increasing bulk Lorentz factor");
    let n = 200;
    let boosts: [f64; 6] = [0.0, 0.9, 0.99, 0.999, 0.9999, 0.99998];
    let combos: [(RiemannSolver, Recon); 3] = [
        (RiemannSolver::Rusanov, Recon::Plm(Limiter::Minmod)),
        (RiemannSolver::Hllc, Recon::Ppm),
        (RiemannSolver::Hllc, Recon::Weno5),
    ];

    let mut table = Table::new(&[
        "riemann", "recon", "boost_v", "W_bulk", "status", "L1(rho)", "W_max",
    ]);
    for (rs, recon) in combos {
        for &vb in &boosts {
            let w_bulk = 1.0 / (1.0 - vb * vb).sqrt();
            let prob = Problem::boosted_sod(vb);
            let scheme = Scheme {
                recon,
                riemann: rs,
                ..Scheme::default_with_gamma(5.0 / 3.0)
            };
            let geom = PatchGeom::line(n, 0.0, 1.0, scheme.required_ghosts());
            let mut u = init_cons(geom, &scheme.eos, &|x| (prob.ic)(x));
            let mut solver = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk3, geom);
            let result = solver.advance_to(&mut u, 0.0, prob.t_end, 0.25, None);
            let (status, l1, wmax) = match result {
                Ok(_) => {
                    let exact = prob.exact.clone().unwrap();
                    match l1_density_error(&scheme, &u, &exact, prob.t_end) {
                        Ok((l1, prim)) => (
                            "ok".to_string(),
                            sci(l1),
                            format!("{:.1}", max_lorentz(&prim)),
                        ),
                        Err(e) => (format!("post-fail: {e}"), "-".into(), "-".into()),
                    }
                }
                Err(e) => (
                    format!("fail: {e}").chars().take(28).collect(),
                    "-".into(),
                    "-".into(),
                ),
            };
            table.row(&[
                rs.name().to_string(),
                recon.name().to_string(),
                format!("{vb}"),
                format!("{w_bulk:.1}"),
                status,
                l1,
                wmax,
            ]);
        }
    }
    table.print();
    table.save_csv("f8_lorentz_robustness");
}
