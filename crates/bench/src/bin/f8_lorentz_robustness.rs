//! F8 — Ultrarelativistic robustness.
//!
//! Boosts the Sod tube to bulk Lorentz factors up to ~160 and runs each
//! scheme combination for a short time, recording whether the run
//! completes (no conservative→primitive failure, no NaN) and the L1(ρ)
//! error against the boosted exact solution.
//!
//! Expected shape: every solver survives moderate boosts; the most
//! diffusive combination (Rusanov+PLM) is the most robust at extreme W
//! while HLLC+WENO5 is the most accurate where it survives.
//!
//! Flags: `--toy` shrinks the grid and boost sweep for smoke tests/CI,
//! `--profile` prints the phase breakdown (per-run advance time). A
//! machine-readable report is always written to
//! `results/BENCH_f8_lorentz_robustness.json`.

use rhrsc_bench::{print_phase_table, sci, BenchOpts, RunReport, Table};
use rhrsc_grid::PatchGeom;
use rhrsc_runtime::Registry;
use rhrsc_solver::diag::{l1_density_error, max_lorentz};
use rhrsc_solver::problems::Problem;
use rhrsc_solver::scheme::init_cons;
use rhrsc_solver::{PatchSolver, RkOrder, Scheme};
use rhrsc_srhd::recon::{Limiter, Recon};
use rhrsc_srhd::riemann::RiemannSolver;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let opts = BenchOpts::from_args();
    let (n, boosts): (usize, &[f64]) = if opts.toy {
        (100, &[0.0, 0.9, 0.99, 0.999])
    } else {
        (200, &[0.0, 0.9, 0.99, 0.999, 0.9999, 0.99998])
    };
    println!("# F8: boosted Sod tube, N = {n}, increasing bulk Lorentz factor");
    let combos: [(RiemannSolver, Recon); 3] = [
        (RiemannSolver::Rusanov, Recon::Plm(Limiter::Minmod)),
        (RiemannSolver::Hllc, Recon::Ppm),
        (RiemannSolver::Hllc, Recon::Weno5),
    ];
    let reg = Arc::new(Registry::new());
    let bench_t0 = Instant::now();
    let mut zone_updates = 0.0;
    let (mut runs, mut survived) = (0u64, 0u64);

    let mut table = Table::new(&[
        "riemann", "recon", "boost_v", "W_bulk", "status", "L1(rho)", "W_max",
    ]);
    for (rs, recon) in combos {
        for &vb in boosts {
            let w_bulk = 1.0 / (1.0 - vb * vb).sqrt();
            let prob = Problem::boosted_sod(vb);
            let scheme = Scheme {
                recon,
                riemann: rs,
                ..Scheme::default_with_gamma(5.0 / 3.0)
            };
            let geom = PatchGeom::line(n, 0.0, 1.0, scheme.required_ghosts());
            let mut u = init_cons(geom, &scheme.eos, &|x| (prob.ic)(x));
            let mut solver = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk3, geom);
            let t0 = Instant::now();
            let result = solver.advance_to(&mut u, 0.0, prob.t_end, 0.25, None);
            reg.histogram("phase.advance")
                .record(t0.elapsed().as_nanos() as u64);
            runs += 1;
            if let Ok(steps) = &result {
                survived += 1;
                zone_updates += (n * 3 * *steps) as f64; // cells × RK3 stages × steps
            }
            let (status, l1, wmax) = match result {
                Ok(_) => {
                    let exact = prob.exact.clone().unwrap();
                    match l1_density_error(&scheme, &u, &exact, prob.t_end) {
                        Ok((l1, prim)) => (
                            "ok".to_string(),
                            sci(l1),
                            format!("{:.1}", max_lorentz(&prim)),
                        ),
                        Err(e) => (format!("post-fail: {e}"), "-".into(), "-".into()),
                    }
                }
                Err(e) => (
                    format!("fail: {e}").chars().take(28).collect(),
                    "-".into(),
                    "-".into(),
                ),
            };
            table.row(&[
                rs.name().to_string(),
                recon.name().to_string(),
                format!("{vb}"),
                format!("{w_bulk:.1}"),
                status,
                l1,
                wmax,
            ]);
        }
    }
    table.print();
    table.save_csv("f8_lorentz_robustness");

    let snap = reg.snapshot();
    if opts.profile {
        print_phase_table("f8_lorentz_robustness (all combos pooled)", &snap);
    }
    RunReport::new("f8_lorentz_robustness")
        .config_num("n", n as f64)
        .config_num("max_boost_v", *boosts.last().unwrap())
        .config_num("combos", combos.len() as f64)
        .config_num("runs", runs as f64)
        .config_num("runs_survived", survived as f64)
        .wall_time(bench_t0.elapsed().as_secs_f64())
        .parallelism(1.0)
        .zone_updates(zone_updates)
        .write(&snap);
}
