//! F6 — Load-balancing policies on a heterogeneous node.
//!
//! A step's work is 48 2D tiles of *varying size* (24..64 squared). The
//! node has two CPU workers (speed 1) and one accelerator worker (modeled
//! speed 6). Each policy really executes every tile's RK2 step kernel and
//! charges `measured_cost / worker_speed` to its worker's clock; the
//! reported makespan is the max worker clock.
//!
//! * static — round-robin, throughput-oblivious,
//! * weighted — throughput-weighted LPT using the measured tile costs,
//! * stealing — dynamic self-scheduling (each tile goes to the worker
//!   with the earliest clock).
//!
//! Expected shape: static is worst (the accelerator idles while CPUs
//! finish equal tile counts), weighted recovers most of the gap, dynamic
//! matches weighted without needing cost estimates.
//!
//! Flags: `--toy` shrinks the tile set for smoke tests/CI, `--profile`
//! prints the phase breakdown (per-tile kernel time). A machine-readable
//! report is always written to `results/BENCH_f6_load_balance.json`.

use rhrsc_bench::{f3, print_phase_table, BenchOpts, RunReport, Table};
use rhrsc_grid::{bc, Bc, PatchGeom};
use rhrsc_runtime::sched::{plan_static, plan_weighted};
use rhrsc_runtime::Registry;
use rhrsc_solver::scheme::init_cons;
use rhrsc_solver::{PatchSolver, RkOrder, Scheme};
use rhrsc_srhd::Prim;
use std::sync::Arc;
use std::time::Instant;

fn ic(x: [f64; 3]) -> Prim {
    let r2 = (x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2);
    Prim::at_rest(1.0, if r2 < 0.02 { 50.0 } else { 1.0 })
}

/// Execute one tile's RK2 step and return its measured cost in seconds.
fn run_tile(scheme: &Scheme, n: usize, reg: &Arc<Registry>) -> f64 {
    let geom = PatchGeom::rect([n, n], [0.0, 0.0], [1.0, 1.0], scheme.required_ghosts());
    let mut u = init_cons(geom, &scheme.eos, &ic);
    let mut solver = PatchSolver::new(*scheme, bc::uniform(Bc::Periodic), RkOrder::Rk2, geom);
    let t0 = Instant::now();
    solver.step(&mut u, 5e-4, None).unwrap();
    let dt = t0.elapsed();
    reg.histogram("phase.tile.execute")
        .record(dt.as_nanos() as u64);
    dt.as_secs_f64()
}

fn main() {
    let opts = BenchOpts::from_args();
    let ntiles = if opts.toy { 12 } else { 48 };
    println!("# F6: load balancing across 2 CPU workers (speed 1) + 1 accel worker (speed 6)");
    let scheme = Scheme::default_with_gamma(5.0 / 3.0);
    let speeds = [1.0f64, 1.0, 6.0];
    let reg = Arc::new(Registry::new());
    let bench_t0 = Instant::now();

    // Tiles of deterministic, heterogeneous sizes.
    let tile_sizes: Vec<usize> = (0..ntiles).map(|i| 24 + (i * 7) % 41).collect();
    let mut zone_updates = 0.0;
    let mut count_zu = |n: usize| zone_updates += (n * n * 2) as f64; // cells × RK2 stages

    // Pre-measure tile costs (this is also what the weighted planner uses
    // as its cost model).
    let costs: Vec<f64> = tile_sizes
        .iter()
        .map(|&n| {
            count_zu(n);
            run_tile(&scheme, n, &reg)
        })
        .collect();
    let total: f64 = costs.iter().sum();
    println!(
        "  {} tiles, total serial cost {:.3}s, ideal heterogeneous makespan {:.3}s",
        costs.len(),
        total,
        total / speeds.iter().sum::<f64>()
    );

    // Execute a plan: each worker really runs its tiles; clock += cost/speed.
    let mut execute_plan = |plan: &[Vec<usize>]| -> f64 {
        let mut clocks = vec![0.0f64; speeds.len()];
        for (w, tiles) in plan.iter().enumerate() {
            for &t in tiles {
                count_zu(tile_sizes[t]);
                let cost = run_tile(&scheme, tile_sizes[t], &reg);
                clocks[w] += cost / speeds[w];
            }
        }
        clocks.iter().fold(0.0f64, |m, &c| m.max(c))
    };

    let m_static = execute_plan(&plan_static(tile_sizes.len(), speeds.len()));
    let m_weighted = execute_plan(&plan_weighted(&costs, &speeds));

    // Dynamic self-scheduling: next tile to the earliest-clock worker.
    let mut clocks = vec![0.0f64; speeds.len()];
    for &n in &tile_sizes {
        let w = clocks
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        count_zu(n);
        clocks[w] += run_tile(&scheme, n, &reg) / speeds[w];
    }
    let m_dynamic = clocks.iter().fold(0.0f64, |m, &c| m.max(c));

    let mut table = Table::new(&["policy", "makespan_s", "vs_static"]);
    for (name, m) in [
        ("static", m_static),
        ("weighted", m_weighted),
        ("stealing", m_dynamic),
    ] {
        table.row(&[name.to_string(), format!("{m:.4}"), f3(m_static / m)]);
        reg.histogram(&format!("sched.makespan_us.{name}"))
            .record((m * 1e6) as u64);
    }
    table.print();
    table.save_csv("f6_load_balance");

    assert!(
        m_weighted < m_static,
        "weighted ({m_weighted}) must beat static ({m_static}) under heterogeneity"
    );

    let snap = reg.snapshot();
    if opts.profile {
        print_phase_table("f6_load_balance (all policies pooled)", &snap);
    }
    RunReport::new("f6_load_balance")
        .config_str("workers", "2x cpu (speed 1) + 1x accel (speed 6)")
        .config_num("ntiles", ntiles as f64)
        .config_num("makespan_static_s", m_static)
        .config_num("makespan_weighted_s", m_weighted)
        .config_num("makespan_stealing_s", m_dynamic)
        .wall_time(bench_t0.elapsed().as_secs_f64())
        .parallelism(1.0)
        .zone_updates(zone_updates)
        .write(&snap);
}
