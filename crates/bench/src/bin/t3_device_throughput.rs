//! T3 — Host vs accelerator kernel throughput by tile size.
//!
//! Runs one RK2 step of the full 3D HRSC kernel on cubic tiles of
//! increasing size, on (a) the serial host path and (b) the simulated
//! accelerator (8× modeled kernel throughput, 500 µs launch overhead,
//! 8 GB/s staging link — a conservative 2015-era GPU profile). Reports
//! Mzone-updates/s and the offload speedup.
//!
//! Expected shape: the device *loses* on small tiles (launch overhead
//! dominates) and *wins* on large ones, with a crossover in between —
//! the figure that motivates tile-size-aware heterogeneous scheduling.
//! Device results are bit-identical to the host's (asserted).
//!
//! Flags: `--toy` shrinks the sweep for smoke tests/CI, `--profile`
//! prints the device phase breakdown. A machine-readable report is
//! always written to `results/BENCH_t3_device_throughput.json`.

use rhrsc_bench::{f3, print_phase_table, BenchOpts, RunReport, Table};
use rhrsc_grid::{bc, Bc, PatchGeom};
use rhrsc_runtime::{AcceleratorConfig, Registry};
use rhrsc_solver::device_backend::DevicePatchSolver;
use rhrsc_solver::scheme::init_cons;
use rhrsc_solver::{PatchSolver, RkOrder, Scheme};
use rhrsc_srhd::Prim;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn ic(x: [f64; 3]) -> Prim {
    let r2 = (x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2) + (x[2] - 0.5).powi(2);
    Prim::at_rest(1.0, if r2 < 0.02 { 50.0 } else { 1.0 })
}

fn main() {
    let opts = BenchOpts::from_args();
    let (sizes, repeats): (&[usize], usize) = if opts.toy {
        (&[4, 8, 12], 1)
    } else {
        (&[4, 6, 8, 12, 16, 24, 32, 48], 3)
    };
    println!("# T3: 3D RK2 step throughput, host vs simulated accelerator");
    println!("#     device model: 8x kernel throughput, 500us launch overhead, 8 GB/s link");
    let scheme = Scheme::default_with_gamma(5.0 / 3.0);
    let bcs = bc::uniform(Bc::Periodic);
    let dt = 1e-3;
    let reg = Arc::new(Registry::new());
    let mut wall_total = 0.0;
    let mut zu_total = 0.0;

    let mut table = Table::new(&[
        "tile",
        "zones",
        "host_Mz/s",
        "device_Mz/s",
        "speedup",
        "identical",
    ]);
    for &n in sizes {
        let geom = PatchGeom::cube([n, n, n], [0.0; 3], [1.0; 3], scheme.required_ghosts());
        let u0 = init_cons(geom, &scheme.eos, &ic);
        let zones = (n * n * n * 2) as f64; // cells * stages per step

        // Host: serial step, best of N.
        let mut host_best = f64::INFINITY;
        let mut u_host = u0.clone();
        for rep in 0..repeats {
            let mut u = u0.clone();
            let mut solver = PatchSolver::new(scheme, bcs, RkOrder::Rk2, geom);
            let t0 = Instant::now();
            solver.step(&mut u, dt, None).unwrap();
            host_best = host_best.min(t0.elapsed().as_secs_f64());
            wall_total += t0.elapsed().as_secs_f64();
            zu_total += zones;
            if rep == 0 {
                u_host = u;
            }
        }

        // Device: modeled time of one resident step (overhead + kernel/8).
        let dev = DevicePatchSolver::new(
            AcceleratorConfig {
                compute_threads: 1,
                launch_overhead: Duration::from_micros(500),
                copy_bandwidth: 8e9,
                throughput_multiplier: 8.0,
                name: "sim-gpu".to_string(),
            },
            scheme,
            bcs,
            RkOrder::Rk2,
            geom,
        );
        dev.set_metrics(reg.clone());
        dev.upload(&u0).get();
        let v0 = dev.device_time();
        dev.enqueue_step(dt).get();
        let dev_secs = (dev.device_time() - v0).as_secs_f64();
        let identical = dev.download().raw() == u_host.raw();
        wall_total += dev.device_time().as_secs_f64();
        zu_total += zones;

        let host_mz = zones / host_best / 1e6;
        let dev_mz = zones / dev_secs / 1e6;
        table.row(&[
            format!("{n}^3"),
            (n * n * n).to_string(),
            f3(host_mz),
            f3(dev_mz),
            f3(dev_mz / host_mz),
            identical.to_string(),
        ]);
        assert!(identical, "device result diverged at {n}^3");
    }
    table.print();
    table.save_csv("t3_device_throughput");

    let snap = reg.snapshot();
    if opts.profile {
        print_phase_table(
            "t3_device_throughput (device queue, all tiles pooled)",
            &snap,
        );
    }
    RunReport::new("t3_device_throughput")
        .config_str("device", "sim-gpu (8x kernels, 500us launch, 8 GB/s link)")
        .config_num("max_tile", *sizes.last().unwrap() as f64)
        .config_num("repeats", repeats as f64)
        .config_str("clock", "device-modeled + host wall")
        .wall_time(wall_total)
        .parallelism(1.0)
        .zone_updates(zu_total)
        .write(&snap);
}
