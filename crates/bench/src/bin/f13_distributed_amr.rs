//! F13 — Distributed fault-tolerant AMR.
//!
//! The Berger–Oliger patch hierarchy sharded across simulated ranks
//! (SFC-ordered, cost-weighted contiguous segments; owner-computes with
//! descend/reflux/allgather exchanges), driven through the rank-failure
//! recovery ladder:
//!
//! * **A (serial reference)** — the plain single-rank [`AmrSolver`] on the
//!   Sod tube; the determinism baseline,
//! * **B (distributed, no faults)** — the same problem on 4 ranks through
//!   [`DistAmrSolver`]. Must be **bit-identical** to A in every patch of
//!   the gathered v4 checkpoint, with real cross-rank coupling (descend +
//!   reflux traffic) exercised,
//! * **C (rank crash mid-regrid)** — a steepening periodic pulse keeps
//!   the hierarchy regridding; rank 1 is killed inside the regrid window
//!   (the allgather that precedes clustering). Survivors must evict it
//!   via suspicion consensus, restore from the shared rank-count-
//!   independent checkpoint, re-partition the hierarchy over 3 ranks,
//!   and finish. Acceptance: composite ∫D, ∫S, ∫τ drift ≤ 1e-11 and
//!   restricted base-grid L1 drift vs the fault-free run ≤ 1e-3.
//!
//! Flags: `--toy` shrinks the grids for smoke tests/CI, `--profile`
//! prints the pooled phase table. A report with the `amr.dist.*`
//! counters lands in `results/BENCH_f13_distributed_amr.json`.
//!
//! Env knobs: `RHRSC_FAULT_SEED` (CI seed matrix),
//! `RHRSC_AMR_REBALANCE_THRESH` (regrid-time re-partition trigger).

use rhrsc_bench::{print_phase_table, sci, BenchOpts, RunReport, Table};
use rhrsc_comm::{run_with_faults, FaultPlan, NetworkModel};
use rhrsc_grid::{bc, Bc};
use rhrsc_io::checkpoint::AmrCheckpoint;
use rhrsc_runtime::fault::RankSite;
use rhrsc_runtime::Registry;
use rhrsc_solver::amr::{AmrConfig, AmrSolver};
use rhrsc_solver::problems::Problem;
use rhrsc_solver::scheme::SolverError;
use rhrsc_solver::{DistAmrConfig, DistAmrSolver, DistAmrStats, RkOrder, Scheme};
use rhrsc_srhd::{Prim, NCOMP};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn scheme() -> Scheme {
    Scheme::default_with_gamma(5.0 / 3.0)
}

fn pulse_ic(x: [f64; 3]) -> Prim {
    let g = (-((x[0] - 0.5) / 0.08).powi(2)).exp();
    Prim::new_1d(1.0 + 2.0 * g, 0.0, 1.0 + 20.0 * g)
}

/// Relative L1 distance over the level-0 (restricted composite) records
/// of two v4 AMR checkpoints.
fn l1_base(a: &AmrCheckpoint, b: &AmrCheckpoint) -> f64 {
    let base = |ck: &AmrCheckpoint| -> Vec<f64> {
        let mut recs: Vec<_> = ck.patches.iter().filter(|p| p.level == 0).collect();
        recs.sort_by_key(|p| p.lo);
        recs.iter().flat_map(|p| p.data.iter().copied()).collect()
    };
    let (xa, xb) = (base(a), base(b));
    assert_eq!(xa.len(), xb.len(), "base grids must match");
    let num: f64 = xa.iter().zip(&xb).map(|(x, y)| (x - y).abs()).sum();
    let den: f64 = xb.iter().map(|y| y.abs()).sum();
    num / den
}

fn main() {
    let opts = BenchOpts::from_args();
    let (n0, t_end_b, t_end_c) = if opts.toy {
        (48usize, 0.10, 0.12)
    } else {
        (96, 0.20, 0.15)
    };
    let nranks = 4usize;
    println!("# F13: distributed AMR, base {n0} on {nranks} ranks");
    let reg = Arc::new(Registry::new());
    let bench_t0 = Instant::now();
    let seed: u64 = std::env::var("RHRSC_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(13);

    // ---- Arm A: serial reference on the Sod tube ----------------------
    let prob = Problem::sod();
    let amr_cfg = AmrConfig {
        max_levels: 2,
        ..AmrConfig::default()
    };
    let t0 = Instant::now();
    let mut gold = AmrSolver::new(
        scheme(),
        prob.bcs,
        RkOrder::Rk3,
        n0,
        0.0,
        1.0,
        amr_cfg.clone(),
    );
    gold.init(&|x| (prob.ic)(x));
    gold.advance_to(0.0, t_end_b, 0.4).unwrap();
    let wall_a = t0.elapsed().as_secs_f64();
    reg.histogram("phase.advance")
        .record(t0.elapsed().as_nanos() as u64);
    let ck_gold = gold.to_checkpoint(t_end_b);
    println!(
        "A  serial reference: {} steps, {} patches, wall = {wall_a:.3}s",
        gold.steps(),
        ck_gold.patches.len()
    );

    // ---- Arm B: distributed, no faults, bit-identical ------------------
    let dist_cfg = DistAmrConfig {
        amr: amr_cfg.clone(),
        ..DistAmrConfig::default()
    };
    let t0 = Instant::now();
    let outs_b = {
        let prob = prob.clone();
        let dist_cfg = dist_cfg.clone();
        let reg = Arc::clone(&reg);
        run_with_faults(nranks, NetworkModel::ideal(), None, move |rank| {
            rank.set_metrics(reg.clone());
            let mut d = DistAmrSolver::new(
                scheme(),
                prob.bcs,
                RkOrder::Rk3,
                n0,
                0.0,
                1.0,
                dist_cfg.clone(),
            );
            d.set_metrics(reg.clone());
            d.init(rank, &|x| (prob.ic)(x));
            d.advance_to(rank, 0.0, t_end_b, 0.4).unwrap();
            let ck = d.to_checkpoint_gathered(rank, t_end_b).unwrap();
            (ck, d.stats())
        })
    };
    let wall_b = t0.elapsed().as_secs_f64();
    reg.histogram("phase.advance")
        .record(t0.elapsed().as_nanos() as u64);
    let mut halo_b = 0u64;
    let mut reflux_b = 0u64;
    let mut bytes_b = 0u64;
    for (r, (ck, stats)) in outs_b.iter().enumerate() {
        assert_eq!(ck.patches.len(), ck_gold.patches.len(), "rank {r}");
        for (a, b) in ck.patches.iter().zip(&ck_gold.patches) {
            assert_eq!((a.level, a.lo, a.n), (b.level, b.lo, b.n), "rank {r}");
            for (x, y) in a.data.iter().zip(&b.data) {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "rank {r}: level {} patch at {} diverged from serial",
                    a.level,
                    a.lo
                );
            }
        }
        halo_b += stats.halo_msgs;
        reflux_b += stats.reflux_msgs;
        bytes_b += stats.halo_bytes;
    }
    assert!(
        halo_b > 0 && reflux_b > 0,
        "distributed arm must exercise real cross-rank coupling"
    );
    println!(
        "B  distributed x{nranks}, no faults: bit-identical = true, \
         halo msgs = {halo_b}, reflux msgs = {reflux_b}, \
         payload = {bytes_b} B, wall = {wall_b:.3}s"
    );

    // ---- Arm C: rank killed mid-regrid, survivors shrink ---------------
    // Fault-free pulse reference for the drift gate (serial: arm B just
    // pinned serial == distributed bitwise).
    let pulse_cfg = AmrConfig {
        threshold: 0.08,
        ..amr_cfg.clone()
    };
    let mut pref = AmrSolver::new(
        scheme(),
        bc::uniform(Bc::Periodic),
        RkOrder::Rk3,
        n0,
        0.0,
        1.0,
        pulse_cfg.clone(),
    );
    pref.init(&pulse_ic);
    pref.advance_to(0.0, t_end_c, 0.4).unwrap();
    let ck_pulse = pref.to_checkpoint(t_end_c);

    let ckp_dir = std::env::temp_dir().join("rhrsc-f13-checkpoints");
    let _ = std::fs::remove_dir_all(&ckp_dir);
    let crash_step = 8u64;
    let plan_c = FaultPlan {
        seed,
        crash_rank: Some(1),
        crash_step,
        crash_site: RankSite::Regrid,
        ..FaultPlan::disabled()
    };
    let dist_cfg_c = DistAmrConfig {
        amr: pulse_cfg,
        checkpoint_dir: Some(ckp_dir.clone()),
        checkpoint_interval: 2,
        ..DistAmrConfig::default()
    };
    let model_c = NetworkModel::ideal().with_suspect_after(Duration::from_millis(150));
    let t0 = Instant::now();
    #[allow(clippy::type_complexity)]
    let outs_c: Vec<Option<(DistAmrStats, [f64; NCOMP], [f64; NCOMP], AmrCheckpoint)>> = {
        let dist_cfg_c = dist_cfg_c.clone();
        let reg = Arc::clone(&reg);
        run_with_faults(nranks, model_c, Some(plan_c), move |rank| {
            rank.set_metrics(reg.clone());
            let mut d = DistAmrSolver::new(
                scheme(),
                bc::uniform(Bc::Periodic),
                RkOrder::Rk3,
                n0,
                0.0,
                1.0,
                dist_cfg_c.clone(),
            );
            d.set_metrics(reg.clone());
            d.init(rank, &pulse_ic);
            let before = d.composite_totals_gathered(rank).unwrap();
            match d.advance_to(rank, 0.0, t_end_c, 0.4) {
                Ok(stats) => {
                    let after = d.composite_totals_gathered(rank).unwrap();
                    let ck = d.to_checkpoint_gathered(rank, t_end_c).unwrap();
                    Some((stats, before, after, ck))
                }
                Err(SolverError::RankFailed { .. }) => None,
                Err(e) => panic!("rank {}: unexpected error {e}", rank.rank()),
            }
        })
    };
    let wall_c = t0.elapsed().as_secs_f64();
    reg.histogram("phase.advance")
        .record(t0.elapsed().as_nanos() as u64);
    let _ = std::fs::remove_dir_all(&ckp_dir);
    assert!(outs_c[1].is_none(), "the victim must report RankFailed");
    let survivors: Vec<_> = outs_c.into_iter().flatten().collect();
    assert_eq!(
        survivors.len(),
        nranks - 1,
        "all survivors must finish degraded"
    );
    let mut max_drift = 0.0f64;
    for (stats, before, after, _) in &survivors {
        assert_eq!(stats.shrinks, 1, "{stats:?}");
        assert_eq!(stats.ranks_lost, 1, "{stats:?}");
        for c in 0..NCOMP {
            max_drift = max_drift.max((after[c] - before[c]).abs() / before[c].abs().max(1.0));
        }
    }
    assert!(
        max_drift <= 1e-11,
        "post-shrink conservation drift {max_drift} exceeds 1e-11"
    );
    let stats_c = survivors[0].0;
    let l1 = l1_base(&survivors[0].3, &ck_pulse);
    println!(
        "C  rank 1 killed in the regrid window of step {crash_step}: \
         shrinks = {}, ranks lost = {}, migrations = {}, restores = {}, \
         wall = {wall_c:.3}s",
        stats_c.shrinks, stats_c.ranks_lost, stats_c.migrations, stats_c.restores
    );
    println!(
        "C  conservation drift = {}, base-grid L1 drift vs fault-free = {}",
        sci(max_drift),
        sci(l1)
    );
    assert!(l1 <= 1e-3, "post-shrink L1 drift {l1} exceeds 1e-3");

    let mut table = Table::new(&[
        "run",
        "wall_s",
        "halo_msgs",
        "reflux_msgs",
        "shrinks",
        "l1_drift",
    ]);
    table.row(&[
        "A:serial".into(),
        format!("{wall_a:.3}"),
        "0".into(),
        "0".into(),
        "0".into(),
        "0".into(),
    ]);
    table.row(&[
        "B:dist-x4".into(),
        format!("{wall_b:.3}"),
        halo_b.to_string(),
        reflux_b.to_string(),
        "0".into(),
        "0".into(),
    ]);
    table.row(&[
        "C:crash-regrid".into(),
        format!("{wall_c:.3}"),
        stats_c.halo_msgs.to_string(),
        stats_c.reflux_msgs.to_string(),
        stats_c.shrinks.to_string(),
        sci(l1),
    ]);
    table.print();
    table.save_csv("f13_distributed_amr");

    let snap = reg.snapshot();
    if opts.profile {
        print_phase_table("f13_distributed_amr (all arms pooled)", &snap);
    }
    RunReport::new("f13_distributed_amr")
        .config_str("problem", "Sod (A/B) + periodic pulse (C), 4 ranks")
        .config_num("n_base", n0 as f64)
        .config_num("max_levels", amr_cfg.max_levels as f64)
        .config_num("fault_seed", seed as f64)
        .config_num("crash_rank", 1.0)
        .config_num("crash_step", crash_step as f64)
        .config_num("conservation_drift_after_shrink", max_drift)
        .config_num("l1_drift_after_shrink", l1)
        .wall_time(bench_t0.elapsed().as_secs_f64())
        .parallelism(nranks as f64)
        .write(&snap);
}
