//! A4 — Reconstruction cost/accuracy trade-off.
//!
//! The per-zone cost of each reconstruction scheme (1D step throughput)
//! side-by-side with its Sod accuracy — the table behind the default
//! choice of PPM+HLLC.
//!
//! Expected shape: cost grows PC < PLM < CENO3 ≈ PPM < WENO5 ≈ MP5; PPM
//! sits at the best accuracy-per-cost for shock problems.

use rhrsc_bench::{f3, print_phase_table, sci, BenchOpts, RunReport, Table};
use rhrsc_grid::PatchGeom;
use rhrsc_runtime::Registry;
use rhrsc_solver::diag::l1_density_error;
use rhrsc_solver::problems::Problem;
use rhrsc_solver::scheme::init_cons;
use rhrsc_solver::{PatchSolver, RkOrder, Scheme};
use rhrsc_srhd::recon::Recon;
use std::time::Instant;

fn main() {
    let opts = BenchOpts::from_args();
    let n = if opts.toy { 100 } else { 400 };
    println!("# A4: reconstruction cost vs accuracy, Sod N = {n}, rk3 + hllc");
    let prob = Problem::sod();
    let reg = Registry::new();
    let bench_t0 = Instant::now();
    let mut total_zones = 0.0f64;
    let mut table = Table::new(&["recon", "Mzones/s", "L1(rho)", "rel_cost"]);
    let mut base_cost = None;
    for recon in Recon::SWEEP {
        let scheme = Scheme {
            recon,
            ..Scheme::default_with_gamma(5.0 / 3.0)
        };
        let geom = PatchGeom::line(n, 0.0, 1.0, scheme.required_ghosts());
        let mut u = init_cons(geom, &scheme.eos, &|x| (prob.ic)(x));
        let mut solver = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk3, geom);
        let t0 = Instant::now();
        solver
            .advance_to(&mut u, 0.0, prob.t_end, 0.4, None)
            .unwrap();
        let wall = t0.elapsed().as_secs_f64();
        reg.histogram("phase.advance").record((wall * 1e9) as u64);
        let zones = solver.stats().zone_updates as f64;
        total_zones += zones;
        let exact = prob.exact.clone().unwrap();
        let (l1, _) = l1_density_error(&scheme, &u, &exact, prob.t_end).unwrap();
        let per_zone = wall / zones;
        let b = *base_cost.get_or_insert(per_zone);
        table.row(&[
            recon.name().to_string(),
            f3(zones / wall / 1e6),
            sci(l1),
            f3(per_zone / b),
        ]);
    }
    table.print();
    table.save_csv("a4_recon_cost");
    let snap = reg.snapshot();
    if opts.profile {
        print_phase_table("a4_recon_cost", &snap);
    }
    RunReport::new("a4_recon_cost")
        .config_str("problem", "sod, rk3 + hllc, recon sweep")
        .config_num("n", n as f64)
        .wall_time(bench_t0.elapsed().as_secs_f64())
        .parallelism(1.0)
        .zone_updates(total_zones)
        .write(&snap);
}
