//! T1 — Convergence-rate table on smooth flow.
//!
//! Advects a sinusoidal density wave (uniform v = 0.5, p = 1) for t = 0.4
//! at N = 32..512 with PLM-MC, PPM and WENO5 (SSP-RK3 + HLLC) and reports
//! the L1(ρ) error against the exact advected profile plus the observed
//! convergence order between successive resolutions. `--toy` stops the
//! ladder at N = 128.
//!
//! Expected shape: every scheme converges; order(PLM) ≈ 2,
//! order(PPM) ≳ 2.5, order(WENO5) highest; absolute errors ordered
//! WENO5 < PPM < PLM at fixed N.

use rhrsc_bench::{print_phase_table, sci, BenchOpts, RunReport, Table};
use rhrsc_grid::PatchGeom;
use rhrsc_runtime::Registry;
use rhrsc_solver::diag::l1_density_error;
use rhrsc_solver::problems::Problem;
use rhrsc_solver::scheme::init_cons;
use rhrsc_solver::{PatchSolver, RkOrder, Scheme};
use rhrsc_srhd::recon::{Limiter, Recon};
use std::time::Instant;

fn main() {
    let opts = BenchOpts::from_args();
    println!("# T1: smooth-advection convergence (density wave, v=0.5, t=0.4)");
    let prob = Problem::density_wave(0.5, 0.3);
    let t_end = 0.4;
    let schemes = [
        Recon::Plm(Limiter::Mc),
        Recon::Ppm,
        Recon::Ceno3,
        Recon::Mp5,
        Recon::Weno5,
    ];
    let ns: &[usize] = if opts.toy {
        &[32, 64, 128]
    } else {
        &[32, 64, 128, 256, 512]
    };
    let reg = Registry::new();
    let bench_t0 = Instant::now();
    let mut zone_updates = 0u64;

    let mut table = Table::new(&["recon", "N", "L1(rho)", "order"]);
    for recon in schemes {
        let scheme = Scheme {
            recon,
            ..Scheme::default_with_gamma(5.0 / 3.0)
        };
        let mut prev: Option<f64> = None;
        for &n in ns {
            let geom = PatchGeom::line(n, 0.0, 1.0, scheme.required_ghosts());
            let mut u = init_cons(geom, &scheme.eos, &|x| (prob.ic)(x));
            let mut solver = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk3, geom);
            let t0 = Instant::now();
            solver
                .advance_to(&mut u, 0.0, t_end, 0.4, None)
                .expect("solver failed");
            reg.histogram("phase.advance")
                .record(t0.elapsed().as_nanos() as u64);
            zone_updates += solver.stats().zone_updates;
            let exact = prob.exact.clone().unwrap();
            let (l1, _) = l1_density_error(&scheme, &u, &exact, t_end).unwrap();
            let order = prev.map_or("-".to_string(), |p: f64| format!("{:.2}", (p / l1).log2()));
            table.row(&[recon.name().to_string(), n.to_string(), sci(l1), order]);
            prev = Some(l1);
        }
    }
    table.print();
    table.save_csv("t1_convergence");
    let snap = reg.snapshot();
    if opts.profile {
        print_phase_table("t1_convergence", &snap);
    }
    RunReport::new("t1_convergence")
        .config_str("problem", "density wave, v=0.5, hllc + rk3")
        .config_num("n_max", *ns.last().unwrap() as f64)
        .config_num("schemes", schemes.len() as f64)
        .wall_time(bench_t0.elapsed().as_secs_f64())
        .parallelism(1.0)
        .zone_updates(zone_updates as f64)
        .write(&snap);
}
