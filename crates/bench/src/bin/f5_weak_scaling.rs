//! F5 — Weak scaling.
//!
//! Fixed 128×128 block per rank; the global grid grows with the rank
//! count (1..16). Reports the simulated makespan for 10 RK2 steps and the
//! weak-scaling efficiency `t(1) / t(P)`.
//!
//! Expected shape: near-flat makespan (efficiency ≳ 0.8) — per-rank work
//! is constant and only halo exchange plus the Δt reduction grow — the
//! classic weak-scaling figure every CLUSTER-style paper reports.
//!
//! Flags: `--toy` shrinks the sweep for smoke tests/CI, `--profile`
//! prints the phase breakdown. A machine-readable report is always
//! written to `results/BENCH_f5_weak_scaling.json`.

use rhrsc_bench::{f3, print_phase_table, BenchOpts, RunReport, Table};
use rhrsc_comm::{run, NetworkModel};
use rhrsc_grid::{bc, Bc, CartDecomp};
use rhrsc_runtime::Registry;
use rhrsc_solver::driver::{BlockSolver, DistConfig, ExchangeMode};
use rhrsc_solver::{RkOrder, Scheme};
use rhrsc_srhd::Prim;
use std::sync::Arc;
use std::time::Duration;

fn ic(x: [f64; 3]) -> Prim {
    Prim {
        rho: 1.0
            + 0.4
                * (2.0 * std::f64::consts::PI * x[0]).sin()
                * (2.0 * std::f64::consts::PI * x[1]).cos(),
        vel: [0.4, -0.3, 0.0],
        p: 1.0,
    }
}

fn main() {
    let opts = BenchOpts::from_args();
    let (block, nsteps, ranks): (usize, usize, &[usize]) = if opts.toy {
        (32, 4, &[1, 2, 4])
    } else {
        (128, 10, &[1, 2, 4, 8, 16])
    };
    println!(
        "# F5: weak scaling, {block}x{block} per rank, {nsteps} RK2 steps, virtual cluster (10us, 10GB/s)"
    );
    let model = NetworkModel::virtual_cluster(Duration::from_micros(10), 10e9);
    let reg = Arc::new(Registry::new());
    let mut wall_total = 0.0;
    let mut zu_total = 0.0;

    let mut table = Table::new(&["ranks", "global_grid", "makespan_s", "efficiency"]);
    let mut base = None;
    for &p in ranks {
        let decomp = CartDecomp::auto(p, [block * p, block, 1], [true, true, false]);
        // Grow the grid to match the chosen process grid exactly.
        let global_n = [block * decomp.dims[0], block * decomp.dims[1], 1];
        let cfg = DistConfig {
            scheme: Scheme::default_with_gamma(5.0 / 3.0),
            rk: RkOrder::Rk2,
            global_n,
            domain: (
                [0.0; 3],
                [decomp.dims[0] as f64, decomp.dims[1] as f64, 1.0],
            ),
            decomp,
            bcs: bc::uniform(Bc::Periodic),
            cfl: 0.4,
            mode: ExchangeMode::BulkSynchronous,
            gang_threads: 0,
            // Guarded cadence: coast on 0.9× the cached Δt, refresh on
            // the AIMD window (violations collapse it — see a3).
            dt_refresh_interval: 5,
        };
        let stats = run(p, model, |rank| {
            rank.set_metrics(reg.clone());
            let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
            solver.set_metrics(reg.clone());
            solver.advance_steps(rank, &mut u, nsteps).unwrap()
        });
        let makespan = stats.iter().map(|s| s.vtime).fold(0.0, f64::max);
        wall_total += makespan;
        zu_total += stats.iter().map(|s| s.zone_updates as f64).sum::<f64>();
        let base_t = *base.get_or_insert(makespan);
        table.row(&[
            p.to_string(),
            format!("{}x{}", global_n[0], global_n[1]),
            format!("{makespan:.4}"),
            f3(base_t / makespan),
        ]);
    }
    table.print();
    table.save_csv("f5_weak_scaling");

    let snap = reg.snapshot();
    if opts.profile {
        print_phase_table("f5_weak_scaling (all rank counts pooled)", &snap);
    }
    let max_ranks = *ranks.last().unwrap();
    RunReport::new("f5_weak_scaling")
        .config_str("preset", if opts.toy { "toy" } else { "full" })
        .config_str("model", "virtual_cluster(10us, 10GB/s)")
        .config_num("block_n", block as f64)
        .config_num("nsteps", nsteps as f64)
        .config_num("max_ranks", max_ranks as f64)
        .config_str("mode", "bulk-sync")
        .config_num("dt_refresh_interval", 5.0)
        .config_str("clock", "virtual")
        .wall_time(wall_total)
        .parallelism(max_ranks as f64)
        .zone_updates(zu_total)
        .write(&snap);
}
