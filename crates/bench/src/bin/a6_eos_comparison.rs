//! A6 — Equation-of-state comparison.
//!
//! The authors' astrophysics papers center on EOS effects in relativistic
//! flows. This table runs the blast-wave problems with the constant-Γ
//! ideal gas (Γ = 4/3, 5/3) and the Taub–Mathews approximate Synge gas,
//! and reports shock position, peak compression, and maximum Lorentz
//! factor — the observables an EOS changes.
//!
//! Expected shape: the TM gas interpolates between the Γ-law limits —
//! behaving like Γ = 5/3 where the flow is cold and like Γ = 4/3 in the
//! hot post-shock shell, so its shock position and compression sit
//! between the two constant-Γ runs (closer to 4/3 for the hot blast2).

use rhrsc_bench::{f3, Table};
use rhrsc_eos::Eos;
use rhrsc_grid::PatchGeom;
use rhrsc_solver::diag::max_lorentz;
use rhrsc_solver::problems::Problem;
use rhrsc_solver::scheme::{init_cons, recover_prims, Scheme};
use rhrsc_solver::{PatchSolver, RkOrder};

fn main() {
    println!("# A6: EOS comparison on the Marti-Muller blast waves, N = 400");
    let n = 400;
    let eoses = [
        ("gamma=4/3", Eos::ideal(4.0 / 3.0)),
        ("taub-mathews", Eos::TaubMathews),
        ("gamma=5/3", Eos::ideal(5.0 / 3.0)),
    ];
    let mut table = Table::new(&["problem", "eos", "shock_x", "rho_peak", "W_max"]);
    for prob in [Problem::blast_wave_1(), Problem::blast_wave_2()] {
        for (name, eos) in eoses {
            let scheme = Scheme {
                eos,
                ..Scheme::default_with_gamma(5.0 / 3.0)
            };
            let geom = PatchGeom::line(n, 0.0, 1.0, scheme.required_ghosts());
            let mut u = init_cons(geom, &scheme.eos, &|x| (prob.ic)(x));
            let mut solver = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk3, geom);
            solver
                .advance_to(&mut u, 0.0, prob.t_end, 0.4, None)
                .unwrap_or_else(|e| panic!("{} with {name}: {e}", prob.name));
            let mut prim = rhrsc_grid::Field::new(geom, 5);
            recover_prims(&scheme, &u, &mut prim).unwrap();
            // Shock = rightmost cell compressed above ambient.
            let ambient = (prob.ic)([0.99, 0.0, 0.0]).rho;
            let mut shock_x = 0.0;
            let mut rho_peak = 0.0f64;
            for (i, j, k) in geom.interior_iter() {
                let rho = prim.at(0, i, j, k);
                rho_peak = rho_peak.max(rho);
                if rho > 1.5 * ambient {
                    shock_x = geom.center(i, j, k)[0];
                }
            }
            table.row(&[
                prob.name.clone(),
                name.to_string(),
                f3(shock_x),
                f3(rho_peak),
                f3(max_lorentz(&prim)),
            ]);
        }
    }
    table.print();
    table.save_csv("a6_eos_comparison");
}
