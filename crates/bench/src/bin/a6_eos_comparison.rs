//! A6 — Equation-of-state comparison.
//!
//! The authors' astrophysics papers center on EOS effects in relativistic
//! flows. This table runs the blast-wave problems with the constant-Γ
//! ideal gas (Γ = 4/3, 5/3) and the Taub–Mathews approximate Synge gas,
//! and reports shock position, peak compression, and maximum Lorentz
//! factor — the observables an EOS changes.
//!
//! Expected shape: the TM gas interpolates between the Γ-law limits —
//! behaving like Γ = 5/3 where the flow is cold and like Γ = 4/3 in the
//! hot post-shock shell, so its shock position and compression sit
//! between the two constant-Γ runs (closer to 4/3 for the hot blast2).

use rhrsc_bench::{f3, print_phase_table, BenchOpts, RunReport, Table};
use rhrsc_eos::Eos;
use rhrsc_grid::PatchGeom;
use rhrsc_runtime::Registry;
use rhrsc_solver::diag::max_lorentz;
use rhrsc_solver::problems::Problem;
use rhrsc_solver::scheme::{init_cons, recover_prims, Scheme};
use rhrsc_solver::{PatchSolver, RkOrder};
use std::time::Instant;

fn main() {
    let opts = BenchOpts::from_args();
    let n = if opts.toy { 100 } else { 400 };
    println!("# A6: EOS comparison on the Marti-Muller blast waves, N = {n}");
    let reg = Registry::new();
    let bench_t0 = Instant::now();
    let eoses = [
        ("gamma=4/3", Eos::ideal(4.0 / 3.0)),
        ("taub-mathews", Eos::TaubMathews),
        ("gamma=5/3", Eos::ideal(5.0 / 3.0)),
    ];
    let mut table = Table::new(&["problem", "eos", "shock_x", "rho_peak", "W_max"]);
    for prob in [Problem::blast_wave_1(), Problem::blast_wave_2()] {
        for (name, eos) in eoses {
            let scheme = Scheme {
                eos,
                ..Scheme::default_with_gamma(5.0 / 3.0)
            };
            let geom = PatchGeom::line(n, 0.0, 1.0, scheme.required_ghosts());
            let mut u = init_cons(geom, &scheme.eos, &|x| (prob.ic)(x));
            let mut solver = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk3, geom);
            let t0 = Instant::now();
            solver
                .advance_to(&mut u, 0.0, prob.t_end, 0.4, None)
                .unwrap_or_else(|e| panic!("{} with {name}: {e}", prob.name));
            reg.histogram("phase.advance")
                .record(t0.elapsed().as_nanos() as u64);
            let mut prim = rhrsc_grid::Field::new(geom, 5);
            recover_prims(&scheme, &u, &mut prim).unwrap();
            // Shock = rightmost cell compressed above ambient.
            let ambient = (prob.ic)([0.99, 0.0, 0.0]).rho;
            let mut shock_x = 0.0;
            let mut rho_peak = 0.0f64;
            for (i, j, k) in geom.interior_iter() {
                let rho = prim.at(0, i, j, k);
                rho_peak = rho_peak.max(rho);
                if rho > 1.5 * ambient {
                    shock_x = geom.center(i, j, k)[0];
                }
            }
            table.row(&[
                prob.name.clone(),
                name.to_string(),
                f3(shock_x),
                f3(rho_peak),
                f3(max_lorentz(&prim)),
            ]);
        }
    }
    table.print();
    table.save_csv("a6_eos_comparison");
    let snap = reg.snapshot();
    if opts.profile {
        print_phase_table("a6_eos_comparison", &snap);
    }
    RunReport::new("a6_eos_comparison")
        .config_str("problem", "blast1 + blast2, gamma-law vs taub-mathews")
        .config_num("n", n as f64)
        .wall_time(bench_t0.elapsed().as_secs_f64())
        .parallelism(1.0)
        .write(&snap);
}
