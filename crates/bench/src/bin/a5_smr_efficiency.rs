//! A5 — Mesh-refinement efficiency.
//!
//! The classic AMR payoff table: Sod at uniform N=100, uniform N=200,
//! SMR (coarse 100 + a ratio-2 fine level over the Riemann fan), and
//! fully adaptive AMR at the same finest resolution, with L1(ρ) error,
//! zone-update counts (∝ cost), and error·cost efficiency.
//!
//! Expected shape: SMR reaches close to the uniform-fine error at a
//! fraction of the fine zone-updates — the argument for adaptivity that
//! the authors' production codes are built on.

use rhrsc_bench::{f3, print_phase_table, sci, BenchOpts, RunReport, Table};
use rhrsc_grid::PatchGeom;
use rhrsc_runtime::Registry;
use rhrsc_solver::amr::{AmrConfig, AmrSolver};
use rhrsc_solver::diag::l1_density_error;
use rhrsc_solver::problems::Problem;
use rhrsc_solver::scheme::init_cons;
use rhrsc_solver::smr::SmrSolver;
use rhrsc_solver::{PatchSolver, RkOrder, Scheme};
use std::time::Instant;

fn main() {
    // A5 is a small fixed 1D problem (N = 100/200), cheap enough that the
    // full configuration *is* the CI toy run; `--toy` is accepted for
    // harness uniformity but changes nothing.
    let opts = BenchOpts::from_args();
    println!("# A5: static mesh refinement efficiency on Sod, ppm + hllc + rk3");
    let prob = Problem::sod();
    let scheme = Scheme::default_with_gamma(5.0 / 3.0);
    let exact = prob.exact.clone().unwrap();
    let reg = Registry::new();
    let bench_t0 = Instant::now();

    let mut table = Table::new(&["grid", "L1(rho)", "zone_updates", "err_vs_fine"]);

    let uniform = |n: usize| -> (f64, u64) {
        let geom = PatchGeom::line(n, 0.0, 1.0, scheme.required_ghosts());
        let mut u = init_cons(geom, &scheme.eos, &|x| (prob.ic)(x));
        let mut solver = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk3, geom);
        let t0 = Instant::now();
        solver
            .advance_to(&mut u, 0.0, prob.t_end, 0.4, None)
            .unwrap();
        reg.histogram("phase.advance")
            .record(t0.elapsed().as_nanos() as u64);
        let (l1, _) = l1_density_error(&scheme, &u, &exact, prob.t_end).unwrap();
        (l1, solver.stats().zone_updates)
    };
    let (e_coarse, z_coarse) = uniform(100);
    let (e_fine, z_fine) = uniform(200);

    // SMR: refine coarse cells 20..95 (the Riemann fan at t = 0.4),
    // lock-step and Berger-Oliger subcycled.
    let (refine_lo, refine_hi) = (20usize, 95usize);
    let run_smr = |subcycled: bool| -> (f64, u64) {
        let mut smr = SmrSolver::new(
            scheme,
            prob.bcs,
            RkOrder::Rk3,
            100,
            0.0,
            1.0,
            refine_lo,
            refine_hi,
        );
        if subcycled {
            smr = smr.with_subcycling();
        }
        smr.init(&|x| (prob.ic)(x));
        let t0 = Instant::now();
        let n_c = 100u64;
        let n_f = 2 * (refine_hi - refine_lo) as u64;
        // Zone-updates per step: coarse once per stage, fine once (lock-
        // step) or twice (subcycled substeps) per stage.
        let cells_per_step = (n_c + if subcycled { 2 * n_f } else { n_f }) * 3;
        let mut t = 0.0;
        let mut z: u64 = 0;
        while t < prob.t_end - 1e-14 {
            let mut dt = smr.stable_dt(0.4).unwrap();
            if t + dt > prob.t_end {
                dt = prob.t_end - t;
            }
            smr.step(dt).unwrap();
            z += cells_per_step;
            t += dt;
        }
        reg.histogram("phase.advance")
            .record(t0.elapsed().as_nanos() as u64);
        (smr.l1_density_error(&*exact, prob.t_end).unwrap(), z)
    };
    let (e_smr, z_smr) = run_smr(false);
    let (e_sub, z_sub) = run_smr(true);

    // AMR: same base grid and finest resolution, but the solver *finds*
    // the Riemann fan itself (flag + cluster + regrid) instead of being
    // handed a static window — the dynamic counterpart of the SMR rows.
    let mut amr = AmrSolver::new(
        scheme,
        prob.bcs,
        RkOrder::Rk3,
        100,
        0.0,
        1.0,
        AmrConfig {
            max_levels: 2,
            ..AmrConfig::default()
        },
    );
    amr.init(&|x| (prob.ic)(x));
    let t0 = Instant::now();
    amr.advance_to(0.0, prob.t_end, 0.4).unwrap();
    reg.histogram("phase.advance")
        .record(t0.elapsed().as_nanos() as u64);
    let e_amr = amr.l1_density_error(&*exact, prob.t_end).unwrap();
    let z_amr = amr.cell_updates();

    for (name, e, z) in [
        ("uniform-100", e_coarse, z_coarse),
        ("uniform-200", e_fine, z_fine),
        ("smr-100+2x", e_smr, z_smr),
        ("smr+subcycle", e_sub, z_sub),
        ("amr-100+2lvl", e_amr, z_amr),
    ] {
        table.row(&[name.to_string(), sci(e), z.to_string(), f3(e / e_fine)]);
    }
    table.print();
    table.save_csv("a5_smr_efficiency");
    assert!(e_smr < e_coarse, "SMR must beat uniform-coarse");
    assert!(e_amr < e_coarse, "AMR must beat uniform-coarse");
    assert!(
        z_amr < z_sub,
        "adaptive patches must cost less than the static subcycled window"
    );
    let snap = reg.snapshot();
    if opts.profile {
        print_phase_table("a5_smr_efficiency", &snap);
    }
    RunReport::new("a5_smr_efficiency")
        .config_str(
            "problem",
            "sod, uniform 100/200 vs smr 100+2x vs amr 100+2lvl",
        )
        .config_num("n_coarse", 100.0)
        .config_num("n_fine", 200.0)
        .config_num("l1_amr", e_amr)
        .wall_time(bench_t0.elapsed().as_secs_f64())
        .parallelism(1.0)
        .zone_updates((z_coarse + z_fine + z_smr + z_sub + z_amr) as f64)
        .write(&snap);
}
