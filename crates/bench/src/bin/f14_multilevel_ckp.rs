//! F14 — Multi-level diskless checkpointing + SDC scrubbing.
//!
//! A 2D relativistic blast wave on 2×2 ranks exercises the FTI/SCR-style
//! checkpoint hierarchy (L1 own in-memory snapshot → L2 buddy replica →
//! L3 disk slots) and the ABFT silent-data-corruption detection end to
//! end:
//!
//! * **A (reference)** — plain `advance_to`, no faults; wall-clock and
//!   bitwise baseline,
//! * **B (tiers armed)** — `advance_to_with_restart` with per-step ABFT
//!   stamps, L1 snapshots and buddy exchange active but no faults. Must
//!   be **bit-identical** to A (snapshots are pure reads),
//! * **C (SDC storm)** — live-state bit flips injected every few steps.
//!   Every flip must be caught by the per-step ABFT verify *before* any
//!   checkpoint write and repaired from the memory tier (acceptance:
//!   ≥ 99% detection, relative L1 drift vs A ≤ 1e-3, zero undetected),
//! * **D (rotted locals)** — every L1 snapshot is rotted at capture;
//!   restores must fall back to the buddy replicas (shipped clean before
//!   the rot) with the disk tier staying cold,
//! * **E (restore latency)** — microbenchmark of the memory-tier restore
//!   path (stamp verify + trusted decode + span extraction) against the
//!   disk tier (slot read + full CRC-armored decode). Acceptance: the
//!   memory path is ≥ 5× faster,
//! * **F (diskless shrink)** — rank 0 dies with *no checkpoint
//!   directory*; the survivors reassemble the lost block from buddy
//!   replicas and finish degraded.
//!
//! Flags: `--toy` shrinks the grid and horizon for smoke tests/CI,
//! `--profile` prints the pooled phase breakdown. A machine-readable
//! report with the tier/SDC counters is always written to
//! `results/BENCH_f14_multilevel_ckp.json`.
//!
//! Env knobs: `RHRSC_FAULT_SEED` (CI seed matrix),
//! `RHRSC_CKP_LOCAL_INTERVAL`, `RHRSC_CKP_DISK_INTERVAL`,
//! `RHRSC_SDC_SCRUB_INTERVAL`, `RHRSC_BUDDY_OFFSET` (tier cadences for
//! runs built on the config defaults).

use rhrsc_bench::{print_phase_table, sci, BenchOpts, RunReport, Table};
use rhrsc_comm::{run_with_faults, FaultPlan, NetworkModel};
use rhrsc_grid::{bc, Bc, CartDecomp, Field};
use rhrsc_io::checkpoint::{
    decode_global_trusted, encode_global, BlockRecord, CheckpointSlots, GlobalCheckpoint,
};
use rhrsc_io::MemorySnapshot;
use rhrsc_runtime::fault::SnapshotTarget;
use rhrsc_runtime::Registry;
use rhrsc_solver::driver::{
    BlockSolver, DistConfig, ExchangeMode, ResilienceConfig, ResilienceStats,
};
use rhrsc_solver::scheme::SolverError;
use rhrsc_solver::{RkOrder, Scheme};
use rhrsc_srhd::{Prim, NCOMP};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn ic(x: [f64; 3]) -> Prim {
    let r2 = (x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2);
    Prim::at_rest(1.0, if r2 < 0.01 { 100.0 } else { 1.0 })
}

fn dist_cfg(n: usize) -> DistConfig {
    DistConfig {
        scheme: Scheme::default_with_gamma(5.0 / 3.0),
        rk: RkOrder::Rk3,
        global_n: [n, n, 1],
        domain: ([0.0; 3], [1.0, 1.0, 1.0]),
        decomp: CartDecomp {
            dims: [2, 2, 1],
            periodic: [false, false, false],
        },
        bcs: bc::uniform(Bc::Outflow),
        cfl: 0.4,
        mode: ExchangeMode::BulkSynchronous,
        gang_threads: 0,
        dt_refresh_interval: 1,
    }
}

/// Relative L1 difference over all components.
fn l1_rel(a: &Field, b: &Field) -> f64 {
    let (mut num, mut den) = (0.0, 0.0);
    for i in 0..a.raw().len() {
        num += (a.raw()[i] - b.raw()[i]).abs();
        den += b.raw()[i].abs();
    }
    num / den
}

/// One resilient run; per rank returns `None` for a crashed rank and
/// `(rstats, fault-injection flip count, gathered field)` for a
/// finisher.
#[allow(clippy::type_complexity)]
fn resilient_run(
    cfg: &DistConfig,
    t_end: f64,
    model: NetworkModel,
    plan: Option<FaultPlan>,
    res: &ResilienceConfig,
    reg: &Arc<Registry>,
) -> (Vec<Option<(ResilienceStats, u64, Option<Field>)>>, f64) {
    let t0 = Instant::now();
    let outs = run_with_faults(4, model, plan, |rank| {
        rank.set_metrics(reg.clone());
        let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
        solver.set_metrics(reg.clone());
        match solver.advance_to_with_restart(rank, &mut u, 0.0, t_end, res) {
            Ok((_, rstats)) => {
                let flips = rank.fault_stats().map(|f| f.bits_flipped).unwrap_or(0);
                let g = solver.gather_interior(rank, &u).expect("gather failed");
                Some((rstats, flips, g))
            }
            Err(SolverError::RankFailed { .. }) => None,
            Err(e) => panic!("rank {}: unexpected error {e}", rank.rank()),
        }
    });
    (outs, t0.elapsed().as_secs_f64())
}

/// Time the two restore paths over the same realistic-size global
/// checkpoint: the memory tier (stamped-FNV verify + trusted decode +
/// span extraction — exactly what `memory_restore` runs) against the
/// disk tier (slot read + full CRC-armored decode + extraction). Returns
/// `(mem_secs, disk_secs)` per restore.
fn restore_latency(n: usize, reps: usize) -> (f64, f64) {
    let size = [n, n, 1];
    let data: Vec<f64> = (0..NCOMP * n * n)
        .map(|i| 1.0 + (i as f64 * 0.618).sin())
        .collect();
    let gckp = GlobalCheckpoint {
        time: 0.5,
        step: 100,
        global_n: size,
        ncomp: NCOMP,
        blocks: vec![BlockRecord {
            id: 0,
            offset: [0, 0, 0],
            size,
            data,
        }],
    };
    let snap = MemorySnapshot::new(gckp.step, gckp.time, encode_global(&gckp));
    let dir = std::env::temp_dir().join("rhrsc-f14-latency");
    let _ = std::fs::remove_dir_all(&dir);
    let slots = CheckpointSlots::new(&dir).expect("slot dir");
    slots.save_global(&gckp).expect("slot write");
    let span = ([0usize, 0, 0], [n, n / 2, 1]);
    // One untimed rep of each path first: page in the snapshot buffer and
    // the slot file so neither timed loop pays cold-cache costs.
    std::hint::black_box(decode_global_trusted(snap.bytes()).expect("trusted decode"));
    std::hint::black_box(slots.load_newest_global().expect("slot read"));
    let t0 = Instant::now();
    for _ in 0..reps {
        assert!(snap.verify(), "clean snapshot must verify");
        let g = decode_global_trusted(snap.bytes()).expect("trusted decode");
        std::hint::black_box(g.extract_span(span.0, span.1).expect("span"));
    }
    let mem = t0.elapsed().as_secs_f64() / reps as f64;
    let t0 = Instant::now();
    for _ in 0..reps {
        let (g, _) = slots.load_newest_global().expect("slot read");
        std::hint::black_box(g.extract_span(span.0, span.1).expect("span"));
    }
    let disk = t0.elapsed().as_secs_f64() / reps as f64;
    let _ = std::fs::remove_dir_all(&dir);
    (mem, disk)
}

fn main() {
    let opts = BenchOpts::from_args();
    let (n, t_end, lat_n, lat_reps) = if opts.toy {
        (32, 0.05, 128, 20)
    } else {
        (64, 0.08, 256, 30)
    };
    println!(
        "# F14: multi-level diskless checkpointing + SDC scrubbing, \
         2D blast {n}x{n}, 2x2 ranks, t_end = {t_end}"
    );
    let cfg = dist_cfg(n);
    let reg = Arc::new(Registry::new());
    let seed: u64 = std::env::var("RHRSC_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);
    let mut wall_total = 0.0;

    // ---- Run A: fault-free reference ----
    let t0 = Instant::now();
    let outs = run_with_faults(4, NetworkModel::ideal(), None, |rank| {
        rank.set_metrics(reg.clone());
        let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
        solver.set_metrics(reg.clone());
        let stats = solver
            .advance_to(rank, &mut u, 0.0, t_end)
            .expect("reference advance failed");
        (
            solver.gather_interior(rank, &u).expect("gather"),
            stats.steps,
        )
    });
    let wall_a = t0.elapsed().as_secs_f64();
    wall_total += wall_a;
    let (reference, steps_a) = outs.into_iter().next().expect("rank 0 ran");
    let reference = reference.expect("rank 0 holds the gathered field");
    println!("A  reference: plain advance_to, {steps_a} steps, wall = {wall_a:.3}s");

    // ---- Run B: all memory tiers armed, no faults: bit-identical ----
    let res_b = ResilienceConfig {
        local_interval: 2,
        buddy_offset: 1,
        scrub_interval: 2,
        checkpoint_dir: None,
        ..ResilienceConfig::default()
    };
    let (outs_b, wall_b) = resilient_run(&cfg, t_end, NetworkModel::ideal(), None, &res_b, &reg);
    wall_total += wall_b;
    let finishers_b: Vec<_> = outs_b.iter().flatten().collect();
    assert_eq!(finishers_b.len(), 4);
    let state_b = finishers_b[0].2.as_ref().expect("rank 0 gathers");
    let b_identical = state_b.raw() == reference.raw();
    assert!(
        b_identical,
        "armed tiers must be bit-invisible on a fault-free run"
    );
    let snapshots_b: u64 = finishers_b.iter().map(|(r, _, _)| r.local_snapshots).sum();
    println!(
        "B  tiers armed, faults off: bit-identical = {b_identical}, \
         {snapshots_b} snapshots + buddy exchanges, wall = {wall_b:.3}s"
    );

    // ---- Run C: SDC storm — live bit flips, ABFT detection ----
    let res_c = ResilienceConfig {
        local_interval: 1,
        buddy_offset: 1,
        scrub_interval: 1,
        checkpoint_dir: None,
        ..ResilienceConfig::default()
    };
    let plan_c = FaultPlan {
        seed,
        bitflip_prob: 0.15,
        ..FaultPlan::disabled()
    };
    let (outs_c, wall_c) = resilient_run(
        &cfg,
        t_end,
        NetworkModel::ideal(),
        Some(plan_c),
        &res_c,
        &reg,
    );
    wall_total += wall_c;
    let finishers_c: Vec<_> = outs_c.iter().flatten().collect();
    assert_eq!(finishers_c.len(), 4, "an SDC storm must not kill ranks");
    let injected: u64 = finishers_c.iter().map(|(_, f, _)| f).sum();
    let detected: u64 = finishers_c.iter().map(|(r, _, _)| r.sdc_detected).sum();
    let undetected = injected.saturating_sub(detected);
    let rate = if injected > 0 {
        detected as f64 / injected as f64
    } else {
        1.0
    };
    let state_c = finishers_c[0].2.as_ref().expect("rank 0 gathers");
    let l1_c = l1_rel(state_c, &reference);
    println!(
        "C  SDC storm: {injected} flips injected, {detected} detected \
         ({:.1}%), {undetected} undetected, L1 drift = {}, wall = {wall_c:.3}s",
        rate * 100.0,
        sci(l1_c)
    );
    assert!(injected > 0, "the storm must actually inject flips");
    assert!(
        rate >= 0.99,
        "ABFT detection rate {:.2}% below the 99% gate",
        rate * 100.0
    );
    assert_eq!(undetected, 0, "no flip may slip past the per-step verify");
    assert!(l1_c <= 1e-3, "post-repair drift exceeds 1e-3: {l1_c}");

    // ---- Run D: rotted locals — buddy fallback, disk stays cold ----
    let ckp_dir = std::env::temp_dir().join("rhrsc-f14-checkpoints");
    let _ = std::fs::remove_dir_all(&ckp_dir);
    let res_d = ResilienceConfig {
        max_step_retries: 0,
        max_restarts: 200,
        checkpoint_interval: 3,
        checkpoint_dir: Some(ckp_dir.clone()),
        local_interval: 1,
        buddy_offset: 1,
        scrub_interval: 1,
        ..ResilienceConfig::default()
    };
    let plan_d = FaultPlan {
        seed,
        msg_truncate_prob: 0.02,
        snapshot_bitflip_prob: 1.0,
        snapshot_flip_target: SnapshotTarget::Local,
        ..FaultPlan::disabled()
    };
    let (outs_d, wall_d) = resilient_run(
        &cfg,
        t_end,
        NetworkModel::ideal(),
        Some(plan_d),
        &res_d,
        &reg,
    );
    wall_total += wall_d;
    let finishers_d: Vec<_> = outs_d.iter().flatten().collect();
    assert_eq!(finishers_d.len(), 4);
    for (r, _, _) in &finishers_d {
        assert_eq!(r.local_restores, 0, "every L1 copy is rotted: {r:?}");
        assert_eq!(r.disk_restores, 0, "the disk tier must stay cold: {r:?}");
    }
    let buddy_restores: u64 = finishers_d.iter().map(|(r, _, _)| r.buddy_restores).sum();
    let rotted: u64 = finishers_d.iter().map(|(r, _, _)| r.snapshots_rotted).sum();
    assert!(
        buddy_restores > 0,
        "rotted locals must be served by buddies"
    );
    println!(
        "D  rotted locals: {rotted} snapshots scrubbed out, \
         {buddy_restores} buddy restores, 0 disk reads, wall = {wall_d:.3}s"
    );

    // ---- Run E: restore-latency microbenchmark ----
    let (mem_s, disk_s) = restore_latency(lat_n, lat_reps);
    let speedup = disk_s / mem_s;
    println!(
        "E  restore latency ({lat_n}x{lat_n} global state): memory tier = \
         {:.3} ms, disk tier = {:.3} ms, speedup = {speedup:.1}x",
        mem_s * 1e3,
        disk_s * 1e3
    );
    assert!(
        speedup >= 5.0,
        "memory-tier restore speedup {speedup:.1}x below the 5x gate"
    );

    // ---- Run F: diskless shrink from buddy replicas ----
    let plan_f = FaultPlan {
        seed,
        crash_rank: Some(0),
        crash_step: 6,
        ..FaultPlan::disabled()
    };
    let res_f = ResilienceConfig {
        local_interval: 1,
        buddy_offset: 1,
        scrub_interval: 2,
        checkpoint_dir: None,
        ..ResilienceConfig::default()
    };
    let model_f = NetworkModel::ideal().with_suspect_after(Duration::from_millis(150));
    let (outs_f, wall_f) = resilient_run(&cfg, t_end, model_f, Some(plan_f), &res_f, &reg);
    wall_total += wall_f;
    assert!(outs_f[0].is_none(), "the victim must report RankFailed");
    let survivors: Vec<_> = outs_f.iter().flatten().collect();
    assert_eq!(survivors.len(), 3, "all three survivors must finish");
    for (r, _, _) in &survivors {
        assert_eq!(r.shrinks, 1, "{r:?}");
        assert_eq!(r.buddy_shrinks, 1, "the shrink must be diskless: {r:?}");
        assert_eq!(r.disk_restores, 0, "{r:?}");
    }
    let state_f = survivors
        .iter()
        .find_map(|(_, _, g)| g.clone())
        .expect("the new block rank 0 must gather");
    let l1_f = l1_rel(&state_f, &reference);
    println!(
        "F  diskless shrink: rank 0 died at step 6, survivors rebuilt from \
         buddy replicas, L1 drift = {}, wall = {wall_f:.3}s",
        sci(l1_f)
    );
    assert!(l1_f < 0.05, "post-shrink drift exceeds 5%: {l1_f}");

    let mut table = Table::new(&[
        "run",
        "wall_s",
        "sdc_injected",
        "sdc_detected",
        "buddy_restores",
        "l1_rel_drift",
    ]);
    table.row(&[
        "B:tiers-armed".into(),
        format!("{wall_b:.3}"),
        "0".into(),
        "0".into(),
        "0".into(),
        "0".into(),
    ]);
    table.row(&[
        "C:sdc-storm".into(),
        format!("{wall_c:.3}"),
        injected.to_string(),
        detected.to_string(),
        "0".into(),
        sci(l1_c),
    ]);
    table.row(&[
        "D:rotted-locals".into(),
        format!("{wall_d:.3}"),
        "0".into(),
        "0".into(),
        buddy_restores.to_string(),
        "0".into(),
    ]);
    table.row(&[
        "F:diskless-shrink".into(),
        format!("{wall_f:.3}"),
        "0".into(),
        "0".into(),
        "0".into(),
        sci(l1_f),
    ]);
    table.print();
    table.save_csv("f14_multilevel_ckp");
    let _ = std::fs::remove_dir_all(&ckp_dir);

    // Run-varying measurements (SDC tallies, drifts, restore latencies)
    // go into the values section, not `config`: the bench_compare
    // sentinel only judges reports whose config is bit-identical to the
    // committed baseline, so config may hold nothing wall-clock- or
    // seed-stream-dependent.
    reg.histogram("ckp.restore.mem_ns")
        .record((mem_s * 1e9) as u64);
    reg.histogram("ckp.restore.disk_ns")
        .record((disk_s * 1e9) as u64);
    reg.histogram("sdc.injected_flips").record(injected);
    reg.histogram("ckp.l1_drift_shrink_x1e9")
        .record((l1_f * 1e9) as u64);
    let snap = reg.snapshot();
    if opts.profile {
        print_phase_table("f14_multilevel_ckp (all scenarios pooled)", &snap);
    }
    let mut rep = RunReport::new("f14_multilevel_ckp");
    rep.config_str("preset", if opts.toy { "toy" } else { "full" })
        .config_str("problem", "2D blast, 2x2 ranks, RK3 bulk-sync")
        .config_num("global_n", n as f64)
        .config_num("t_end", t_end)
        .config_num("fault_seed", seed as f64)
        .wall_time(wall_total)
        .parallelism(4.0);
    rep.write(&snap);
}
