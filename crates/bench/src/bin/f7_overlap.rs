//! F7 — Communication/computation overlap.
//!
//! The same 4-rank, 256×256 run under bulk-synchronous vs futurized
//! (overlapped) halo exchange, sweeping the injected network latency from
//! 0 to 1 ms. Reports the simulated makespans and the overlap benefit.
//!
//! Expected shape: at negligible latency the two modes tie (overlap even
//! pays a small shell-recompute cost); the benefit grows with latency
//! until the deep-interior compute can no longer cover the message flight
//! time, where the curves converge again toward latency-dominated.

use rhrsc_bench::{f3, Table};
use rhrsc_comm::{run, NetworkModel};
use rhrsc_grid::{bc, Bc, CartDecomp};
use rhrsc_solver::driver::{BlockSolver, DistConfig, ExchangeMode};
use rhrsc_solver::{RkOrder, Scheme};
use rhrsc_srhd::Prim;
use std::time::Duration;

fn ic(x: [f64; 3]) -> Prim {
    let r2 = (x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2);
    Prim::at_rest(1.0, if r2 < 0.01 { 100.0 } else { 1.0 })
}

fn main() {
    println!("# F7: halo-exchange overlap vs network latency, 4 ranks, 256x256, 10 RK2 steps, dt refresh every 5");
    let nsteps = 10;
    let latencies_us = [0u64, 50, 200, 1000, 2000, 5000];

    let mut table = Table::new(&["latency_us", "bulk_sync_s", "overlap_s", "benefit"]);
    for &lat in &latencies_us {
        let model = NetworkModel::virtual_cluster(Duration::from_micros(lat), 10e9);
        let mut times = Vec::new();
        // Best-of-3: per-section wall measurements on the shared CPU token
        // carry scheduler noise; the minimum is the honest makespan.
        for mode in [ExchangeMode::BulkSynchronous, ExchangeMode::Overlap] {
            let cfg = DistConfig {
                scheme: Scheme::default_with_gamma(5.0 / 3.0),
                rk: RkOrder::Rk2,
                global_n: [256, 256, 1],
                domain: ([0.0; 3], [1.0, 1.0, 1.0]),
                decomp: CartDecomp {
                    dims: [2, 2, 1],
                    periodic: [true, true, false],
                },
                bcs: bc::uniform(Bc::Periodic),
                cfl: 0.4,
                mode,
                gang_threads: 0,
                dt_refresh_interval: 5,
            };
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let stats = run(4, model, |rank| {
                    let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
                    solver.advance_steps(rank, &mut u, nsteps).unwrap()
                });
                best = best.min(stats.iter().map(|s| s.vtime).fold(0.0, f64::max));
            }
            times.push(best);
        }
        table.row(&[
            lat.to_string(),
            format!("{:.4}", times[0]),
            format!("{:.4}", times[1]),
            f3(times[0] / times[1]),
        ]);
    }
    table.print();
    table.save_csv("f7_overlap");
}
