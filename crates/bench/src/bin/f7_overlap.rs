//! F7 — Communication/computation overlap.
//!
//! The same 4-rank, 256×256 run under bulk-synchronous vs futurized
//! (overlapped) halo exchange, sweeping the injected network latency from
//! 0 to 5 ms. Reports the simulated makespans and the overlap benefit.
//!
//! Expected shape: at negligible latency the two modes tie (overlap even
//! pays a small shell-recompute cost); the benefit grows with latency
//! until the deep-interior compute can no longer cover the message flight
//! time, where the curves converge again toward latency-dominated.
//!
//! Flags: `--toy` shrinks the sweep for smoke tests/CI, `--profile`
//! prints a per-mode phase breakdown (each mode keeps its own registry so
//! bulk-sync's monolithic `phase.rhs.interior` does not dilute the
//! overlap table). A machine-readable report pooling both modes is always
//! written to `results/BENCH_f7_overlap.json`. `--trace-out <path>` (or
//! `RHRSC_TRACE`) additionally records one overlap-mode run at the
//! highest swept latency as a Chrome/Perfetto `trace.json` — the
//! virtual-time track shows the shell/deep split hiding the halo wait.

use rhrsc_bench::{f3, print_phase_table, BenchOpts, RunReport, Table};
use rhrsc_comm::{run, NetworkModel};
use rhrsc_grid::{bc, Bc, CartDecomp};
use rhrsc_runtime::trace::Tracer;
use rhrsc_runtime::Registry;
use rhrsc_solver::driver::{BlockSolver, DistConfig, ExchangeMode};
use rhrsc_solver::{RkOrder, Scheme};
use rhrsc_srhd::Prim;
use std::sync::Arc;
use std::time::Duration;

fn ic(x: [f64; 3]) -> Prim {
    let r2 = (x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2);
    Prim::at_rest(1.0, if r2 < 0.01 { 100.0 } else { 1.0 })
}

fn main() {
    let opts = BenchOpts::from_args();
    let (n, nsteps, repeats, latencies_us): (usize, usize, usize, &[u64]) = if opts.toy {
        (64, 4, 1, &[0, 200, 1000])
    } else {
        (256, 10, 3, &[0, 50, 200, 1000, 2000, 5000])
    };
    println!(
        "# F7: halo-exchange overlap vs network latency, 4 ranks, {n}x{n}, {nsteps} RK2 steps, dt refreshed once"
    );
    let modes = [ExchangeMode::BulkSynchronous, ExchangeMode::Overlap];
    let mk_cfg = |mode: ExchangeMode| DistConfig {
        scheme: Scheme::default_with_gamma(5.0 / 3.0),
        rk: RkOrder::Rk2,
        global_n: [n, n, 1],
        domain: ([0.0; 3], [1.0, 1.0, 1.0]),
        decomp: CartDecomp {
            dims: [2, 2, 1],
            periodic: [true, true, false],
        },
        bcs: bc::uniform(Bc::Periodic),
        cfl: 0.4,
        mode,
        gang_threads: 0,
        // The blast problem is quasi-steady over a 10-step window;
        // computing dt once amortizes the (latency-dominated)
        // allreduce so the profile isolates halo exchange + RHS.
        dt_refresh_interval: nsteps,
    };
    // One registry per mode: phase shares are only meaningful within a
    // mode (bulk-sync has no deep/shell split).
    let regs: Vec<Arc<Registry>> = modes.iter().map(|_| Arc::new(Registry::new())).collect();
    let mut wall_total = 0.0;
    let mut zu_total = 0.0;

    let mut table = Table::new(&["latency_us", "bulk_sync_s", "overlap_s", "benefit"]);
    for &lat in latencies_us {
        let model = NetworkModel::virtual_cluster(Duration::from_micros(lat), 10e9);
        let mut times = Vec::new();
        // Best-of-N: per-section wall measurements on the shared CPU token
        // carry scheduler noise; the minimum is the honest makespan.
        for (mode, reg) in modes.iter().zip(&regs) {
            let cfg = mk_cfg(*mode);
            let mut best = f64::INFINITY;
            for _ in 0..repeats {
                let stats = run(4, model, |rank| {
                    rank.set_metrics(reg.clone());
                    let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
                    solver.set_metrics(reg.clone());
                    solver.advance_steps(rank, &mut u, nsteps).unwrap()
                });
                let makespan = stats.iter().map(|s| s.vtime).fold(0.0, f64::max);
                // The registry pools every repeat, so the report's wall
                // time must too (not just the best).
                wall_total += makespan;
                zu_total += stats.iter().map(|s| s.zone_updates as f64).sum::<f64>();
                best = best.min(makespan);
            }
            times.push(best);
        }
        table.row(&[
            lat.to_string(),
            format!("{:.4}", times[0]),
            format!("{:.4}", times[1]),
            f3(times[0] / times[1]),
        ]);
    }
    table.print();
    table.save_csv("f7_overlap");

    // Optional flight record: one extra overlap-mode run at the highest
    // swept latency, every rank on its own Perfetto track under the
    // virtual clock.
    if let Some(p) = opts.trace_path() {
        let lat = *latencies_us.last().expect("latency sweep is non-empty");
        let model = NetworkModel::virtual_cluster(Duration::from_micros(lat), 10e9);
        let tracer = Tracer::new_env_sized();
        let cfg = mk_cfg(ExchangeMode::Overlap);
        let tr = tracer.clone();
        run(4, model, move |rank| {
            rank.set_trace(tr.clone());
            let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
            solver.advance_steps(rank, &mut u, nsteps).unwrap();
        });
        if tracer.write_or_warn(&p) {
            println!(
                "  -> wrote trace {} (overlap mode, {lat} us latency)",
                p.display()
            );
        }
    }

    if opts.profile {
        for (mode, reg) in modes.iter().zip(&regs) {
            print_phase_table(&format!("f7_overlap [{}]", mode.name()), &reg.snapshot());
        }
    }
    // The report pools both modes (every phase name is listed either way).
    let mut snap = regs[0].snapshot();
    snap.merge(&regs[1].snapshot());
    RunReport::new("f7_overlap")
        .config_str("model", "virtual_cluster(swept latency, 10GB/s)")
        .config_num("global_n", n as f64)
        .config_num("nsteps", nsteps as f64)
        .config_num("ranks", 4.0)
        .config_num("repeats", repeats as f64)
        .config_str("modes", "bulk-sync+overlap")
        .config_str("clock", "virtual")
        .wall_time(wall_total)
        .parallelism(4.0)
        .zone_updates(zu_total)
        .write(&snap);
}
