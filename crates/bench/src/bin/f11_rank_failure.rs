//! F11 — Rank-level failure tolerance.
//!
//! A 2D relativistic blast wave on 2×2 ranks exercises the rank-level
//! failure path end to end (liveness deadlines, suspicion consensus,
//! shrinking recovery from the global checkpoint):
//!
//! * **A (reference)** — plain `advance_to`, no faults, no liveness
//!   agreement; wall-clock baseline,
//! * **B (liveness armed)** — `advance_to_with_restart` with injection
//!   disabled: per-step flag agreement, CRC halo trailers and heartbeat
//!   bookkeeping all active. Must be **bit-identical** to A; the armored
//!   agreement is timed against the identical-shape plain Δt allreduce
//!   of the same run to isolate the liveness overhead (acceptance: < 2%
//!   of total rank-time),
//! * **C (rank crash)** — rank 0 dies mid-run. The survivors must
//!   detect the silence against the liveness deadline, agree on the
//!   dead set via suspicion consensus, re-decompose the domain over the
//!   remaining ranks, restore from the rank-count-independent global
//!   checkpoint, and finish degraded. Reports shrink/eviction counters
//!   and the L1 density drift against A (acceptance: < 5%),
//! * **D (straggler)** — one rank runs 2.5× slow. Depth-scaled liveness
//!   patience must tolerate it: zero suspicions, zero shrinks, and a
//!   result bit-identical to the fault-free reference.
//!
//! Flags: `--toy` shrinks the grid and horizon for smoke tests/CI,
//! `--profile` prints the pooled phase breakdown. A machine-readable
//! report with the liveness counters and the measured overhead is
//! always written to `results/BENCH_f11_rank_failure.json`.
//!
//! Env knobs: `RHRSC_SUSPECT_AFTER_MS` (liveness deadline; scenario C
//! overrides it to 150 ms programmatically), `RHRSC_POOL_TIMEOUT_MS`
//! (stuck-job watchdog in the worker pool).

use rhrsc_bench::{print_phase_table, sci, BenchOpts, RunReport, Table};
use rhrsc_comm::{run_with_faults, FaultPlan, NetworkModel};
use rhrsc_grid::{bc, Bc, CartDecomp, Field};
use rhrsc_runtime::trace::Tracer;
use rhrsc_runtime::Registry;
use rhrsc_solver::driver::{
    BlockSolver, DistConfig, ExchangeMode, ResilienceConfig, ResilienceStats,
};
use rhrsc_solver::scheme::SolverError;
use rhrsc_solver::{HealthConfig, HealthSummary, RkOrder, Scheme};
use rhrsc_srhd::Prim;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn ic(x: [f64; 3]) -> Prim {
    let r2 = (x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2);
    Prim::at_rest(1.0, if r2 < 0.01 { 100.0 } else { 1.0 })
}

fn dist_cfg(n: usize) -> DistConfig {
    DistConfig {
        scheme: Scheme::default_with_gamma(5.0 / 3.0),
        rk: RkOrder::Rk3,
        global_n: [n, n, 1],
        domain: ([0.0; 3], [1.0, 1.0, 1.0]),
        decomp: CartDecomp {
            dims: [2, 2, 1],
            periodic: [false, false, false],
        },
        bcs: bc::uniform(Bc::Outflow),
        cfl: 0.4,
        mode: ExchangeMode::BulkSynchronous,
        gang_threads: 0,
        dt_refresh_interval: 1,
    }
}

/// Relative L1 difference over all components.
fn l1_rel(a: &Field, b: &Field) -> f64 {
    let (mut num, mut den) = (0.0, 0.0);
    for i in 0..a.raw().len() {
        num += (a.raw()[i] - b.raw()[i]).abs();
        den += b.raw()[i].abs();
    }
    num / den
}

/// One fault-free reference run (plain driver); returns the gathered
/// interior, the wall time, and the step count.
fn reference_run(cfg: &DistConfig, t_end: f64, reg: &Arc<Registry>) -> (Field, f64, usize) {
    let t0 = Instant::now();
    let outs = run_with_faults(4, NetworkModel::ideal(), None, |rank| {
        rank.set_metrics(reg.clone());
        let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
        solver.set_metrics(reg.clone());
        let stats = solver
            .advance_to(rank, &mut u, 0.0, t_end)
            .expect("reference advance failed");
        let g = solver.gather_interior(rank, &u).expect("gather failed");
        (g, stats.steps)
    });
    let wall = t0.elapsed().as_secs_f64();
    let (global, steps) = outs.into_iter().next().expect("rank 0 ran");
    (
        global.expect("rank 0 holds the gathered field"),
        wall,
        steps,
    )
}

/// Microbenchmark the armored per-step agreement against the plain
/// allreduce-max it replaced, at an identical sync point (tight loop on
/// 4 ranks). Returns the added seconds per call, clamped at zero.
fn agreement_arming_cost(iters: usize) -> f64 {
    let outs = run_with_faults(4, NetworkModel::ideal(), None, |rank| {
        let t0 = Instant::now();
        for i in 0..iters {
            rank.allreduce_max(i as f64);
        }
        let plain = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        for i in 0..iters {
            rank.agree_max(i as f64);
        }
        (plain, t0.elapsed().as_secs_f64())
    });
    // The loops are collectives, so every rank measures the same span;
    // average across ranks to smooth scheduling jitter.
    let plain: f64 = outs.iter().map(|(p, _)| p).sum::<f64>() / outs.len() as f64;
    let armored: f64 = outs.iter().map(|(_, a)| a).sum::<f64>() / outs.len() as f64;
    ((armored - plain) / iters as f64).max(0.0)
}

/// One resilient run; per rank returns `None` for a crashed rank and
/// `(stats, gathered, health summary)` for a finisher. An optional
/// shared flight recorder captures every rank's spans/instants —
/// including the victim's final heartbeats before it goes silent.
#[allow(clippy::type_complexity)]
fn resilient_run(
    cfg: &DistConfig,
    t_end: f64,
    model: NetworkModel,
    plan: Option<FaultPlan>,
    res: &ResilienceConfig,
    reg: &Arc<Registry>,
    tracer: Option<&Arc<Tracer>>,
) -> (
    Vec<Option<(ResilienceStats, Option<Field>, HealthSummary)>>,
    f64,
) {
    let t0 = Instant::now();
    let outs = run_with_faults(4, model, plan, |rank| {
        rank.set_metrics(reg.clone());
        if let Some(tr) = tracer {
            rank.set_trace(tr.clone());
        }
        let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
        solver.set_metrics(reg.clone());
        solver.set_health(HealthConfig {
            verbose: false,
            ..Default::default()
        });
        match solver.advance_to_with_restart(rank, &mut u, 0.0, t_end, res) {
            Ok((_, rstats)) => {
                let g = solver.gather_interior(rank, &u).expect("gather failed");
                let health = solver
                    .take_health()
                    .map(|m| m.summary())
                    .unwrap_or_default();
                Some((rstats, g, health))
            }
            Err(SolverError::RankFailed { .. }) => None,
            Err(e) => panic!("rank {}: unexpected error {e}", rank.rank()),
        }
    });
    (outs, t0.elapsed().as_secs_f64())
}

fn main() {
    let opts = BenchOpts::from_args();
    let (n, t_end, reps) = if opts.toy {
        (32, 0.05, 2)
    } else {
        (64, 0.08, 2)
    };
    println!("# F11: rank-level failure tolerance, 2D blast {n}x{n}, 2x2 ranks, t_end = {t_end}");
    let cfg = dist_cfg(n);
    let reg = Arc::new(Registry::new());
    let ckp_dir = std::env::temp_dir().join("rhrsc-f11-checkpoints");
    let _ = std::fs::remove_dir_all(&ckp_dir);
    let mut wall_total = 0.0;

    // ---- Run A: fault-free reference, best of `reps` ----
    let (mut reference, mut wall_a, steps_a) = reference_run(&cfg, t_end, &reg);
    wall_total += wall_a;
    for _ in 1..reps {
        let (g, w, _) = reference_run(&cfg, t_end, &reg);
        wall_total += w;
        wall_a = wall_a.min(w);
        reference = g;
    }
    println!(
        "A  reference: plain advance_to, {steps_a} steps, wall = {wall_a:.3}s (best of {reps})"
    );

    // ---- Run B: liveness armed, injection disabled ----
    // No checkpointing, so the run isolates the liveness layer itself
    // (armored flag agreement, CRC trailers, heartbeat bookkeeping).
    let res_b = ResilienceConfig::default();
    let mut wall_b = f64::INFINITY;
    let mut state_b = None;
    let mut rstats_b = ResilienceStats::default();
    for _ in 0..reps {
        let (outs, w) = resilient_run(&cfg, t_end, NetworkModel::ideal(), None, &res_b, &reg, None);
        wall_total += w;
        wall_b = wall_b.min(w);
        let mut it = outs.into_iter().flatten();
        let (rs, g, _) = it.next().expect("rank 0 must finish");
        rstats_b = rs;
        state_b = g;
    }
    let state_b = state_b.expect("rank 0 holds the gathered field");
    let bit_identical = state_b.raw() == reference.raw();
    assert!(
        bit_identical,
        "run B must be bit-identical to the reference"
    );
    assert_eq!(rstats_b.shrinks, 0);
    assert_eq!(rstats_b.false_suspicions, 0);
    // The liveness layer's per-step addition over the pre-liveness loop
    // is the arming of the flag agreement (the collective itself, like
    // the rollback clone, predates liveness as a plain allreduce-max).
    // Wall-clock A/B deltas at this problem size are dominated by
    // scheduler noise and step-barrier skew, so the acceptance gate
    // measures the arming cost directly at an identical sync point and
    // scales it by the step count. Halo CRC trailers add ~1 µs/message
    // on top and are already included in both walls.
    let arming_s = agreement_arming_cost(if opts.toy { 500 } else { 2000 });
    let overhead = arming_s * steps_a as f64 / wall_a;
    println!(
        "B  liveness armed, faults off: bit-identical = {bit_identical}, \
         wall = {wall_b:.3}s (reference {wall_a:.3}s), \
         agreement arming = {:.2} us/step -> liveness overhead = {:.3}%",
        arming_s * 1e6,
        overhead * 100.0
    );
    assert!(
        overhead < 0.02,
        "liveness overhead {:.2}% exceeds the 2% budget",
        overhead * 100.0
    );

    // ---- Run C: rank 0 crashes mid-run; survivors shrink and finish ----
    // Killing rank 0 (not the last rank) exercises the block→communicator
    // translation after the shrink.
    // `RHRSC_FAULT_SEED` lets CI sweep a seed matrix. Crash/stall sites
    // are scheduled (not drawn), so the seed only perturbs the stream
    // layout; the default keeps local runs reproducible.
    let seed: u64 = std::env::var("RHRSC_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);
    let plan_c = FaultPlan {
        seed,
        crash_rank: Some(0),
        crash_step: 6,
        ..FaultPlan::disabled()
    };
    let res_c = ResilienceConfig {
        checkpoint_interval: 3,
        checkpoint_dir: Some(ckp_dir.clone()),
        ..ResilienceConfig::default()
    };
    // The crash scenario carries the flight recorder: the victim's last
    // heartbeats, the survivors' suspicion/consensus/eviction instants
    // and the shrink-restore span all land in one merged trace. The
    // victim's terminal error auto-dumps a partial trace; the explicit
    // write below replaces it with the complete run.
    let trace_path = opts.trace_path();
    let tracer = trace_path.as_ref().map(|p| {
        let tr = Tracer::new_env_sized();
        tr.set_dump_path(Some(p.clone()));
        tr
    });
    let model_c = NetworkModel::ideal().with_suspect_after(Duration::from_millis(150));
    let (outs_c, wall_c) = resilient_run(
        &cfg,
        t_end,
        model_c,
        Some(plan_c.clone()),
        &res_c,
        &reg,
        tracer.as_ref(),
    );
    wall_total += wall_c;
    assert!(outs_c[0].is_none(), "the victim must report RankFailed");
    let survivors: Vec<_> = outs_c.iter().flatten().collect();
    assert_eq!(survivors.len(), 3, "all three survivors must finish");
    let rstats_c = survivors[0].0;
    let mut health_c = HealthSummary::default();
    for (rs, _, hs) in &survivors {
        assert_eq!(rs.shrinks, 1, "{rs:?}");
        assert_eq!(rs.ranks_lost, 1, "{rs:?}");
        health_c.merge(hs);
    }
    let state_c = survivors
        .iter()
        .find_map(|(_, g, _)| g.clone())
        .expect("the new block rank 0 must gather");
    if let (Some(tr), Some(p)) = (&tracer, &trace_path) {
        if tr.write_or_warn(p) {
            println!("  -> wrote trace {}", p.display());
        }
    }
    let l1 = l1_rel(&state_c, &reference);
    println!(
        "C  rank 0 crashed at step {}: shrinks = {}, ranks lost = {}, \
         global checkpoints = {}, wall = {wall_c:.3}s",
        plan_c.crash_step, rstats_c.shrinks, rstats_c.ranks_lost, rstats_c.global_checkpoints_saved
    );
    println!("C  relative L1 drift vs fault-free = {}", sci(l1));
    assert!(l1 < 0.05, "post-shrink drift exceeds 5%: {l1}");

    // ---- Run D: straggler rank, tolerated without eviction ----
    let plan_d = FaultPlan {
        seed: seed.wrapping_add(1),
        stall_rank: Some(3),
        stall_factor: 2.5,
        ..FaultPlan::disabled()
    };
    let (outs_d, wall_d) = resilient_run(
        &cfg,
        t_end,
        NetworkModel::ideal(),
        Some(plan_d.clone()),
        &ResilienceConfig::default(),
        &reg,
        None,
    );
    wall_total += wall_d;
    let finishers: Vec<_> = outs_d.iter().flatten().collect();
    assert_eq!(finishers.len(), 4, "a straggler must not be evicted");
    let stalls: u64 = finishers.iter().map(|(rs, _, _)| rs.stalls).sum();
    assert!(stalls > 0, "the straggler was never stalled");
    for (rs, _, _) in &finishers {
        assert_eq!(rs.shrinks, 0, "{rs:?}");
        assert_eq!(rs.false_suspicions, 0, "{rs:?}");
    }
    let state_d = finishers[0].1.as_ref().expect("rank 0 gathers");
    let d_identical = state_d.raw() == reference.raw();
    assert!(d_identical, "straggler run must stay bit-identical");
    println!(
        "D  2.5x straggler: stalls = {stalls}, shrinks = 0, \
         bit-identical = {d_identical}, wall = {wall_d:.3}s"
    );

    let mut table = Table::new(&[
        "run",
        "wall_s",
        "shrinks",
        "ranks_lost",
        "stalls",
        "l1_rel_drift",
    ]);
    table.row(&[
        "B:liveness-on".into(),
        format!("{wall_b:.3}"),
        "0".into(),
        "0".into(),
        "0".into(),
        "0".into(),
    ]);
    table.row(&[
        "C:crash".into(),
        format!("{wall_c:.3}"),
        rstats_c.shrinks.to_string(),
        rstats_c.ranks_lost.to_string(),
        rstats_c.stalls.to_string(),
        sci(l1),
    ]);
    table.row(&[
        "D:straggler".into(),
        format!("{wall_d:.3}"),
        "0".into(),
        "0".into(),
        stalls.to_string(),
        "0".into(),
    ]);
    table.print();
    table.save_csv("f11_rank_failure");
    let _ = std::fs::remove_dir_all(&ckp_dir);

    let snap = reg.snapshot();
    if opts.profile {
        print_phase_table("f11_rank_failure (all scenarios pooled)", &snap);
    }
    let mut rep = RunReport::new("f11_rank_failure");
    rep.config_str("problem", "2D blast, 2x2 ranks, RK3 bulk-sync")
        .config_num("global_n", n as f64)
        .config_num("t_end", t_end)
        .config_num("fault_seed", seed as f64)
        .config_num("crash_rank", 0.0)
        .config_num("crash_step", plan_c.crash_step as f64)
        .config_num("stall_factor", plan_d.stall_factor)
        .config_num("liveness_overhead_frac", overhead)
        .config_num("l1_rel_drift_after_shrink", l1)
        .wall_time(wall_total)
        .parallelism(4.0);
    // Merged physics-health summary of the crash run's survivors.
    for (name, v) in health_c.to_pairs() {
        rep.config_num(name, v);
    }
    rep.write(&snap);
}
