//! F12 — Adaptive mesh refinement: accuracy payoff, exact conservation,
//! and restart fidelity.
//!
//! Three arms over the multi-level Berger–Oliger [`AmrSolver`]:
//!
//! 1. **Accuracy/cost** — the relativistic blast wave (Martí–Müller 1) on
//!    a uniform fine grid vs AMR with the same finest resolution (base
//!    100 × 3 levels vs uniform 400). AMR must land within 10% of the
//!    uniform-fine L1(ρ) while spending ≤ 40% of its zone updates.
//! 2. **Conservation** — a smooth periodic pressure pulse that steepens
//!    into shocks while the hierarchy regrids underneath it; the
//!    composite ∫D, ∫S, ∫τ must stay at machine precision (≤ 1e-12
//!    relative) thanks to the reflux corrections.
//! 3. **Restart** — the run is killed halfway, the hierarchy restored
//!    from the format-v4 AMR checkpoint into a fresh solver, and the
//!    continuation must be *bit-identical* to the uninterrupted run.
//!
//! `--toy` shrinks arm 1 to Sod at base 64 × 2 levels (vs uniform 128)
//! with a relaxed accuracy gate; the conservation and restart arms keep
//! their exact assertions — they are cheap and binary.

use rhrsc_bench::{f3, print_phase_table, sci, BenchOpts, RunReport, Table};
use rhrsc_grid::PatchGeom;
use rhrsc_io::checkpoint::{load_amr_checkpoint, save_amr_checkpoint};
use rhrsc_runtime::trace::Tracer;
use rhrsc_runtime::Registry;
use rhrsc_solver::amr::{AmrConfig, AmrSolver};
use rhrsc_solver::diag::l1_density_error;
use rhrsc_solver::problems::Problem;
use rhrsc_solver::scheme::init_cons;
use rhrsc_solver::{PatchSolver, RkOrder, Scheme};
use rhrsc_srhd::{Prim, NCOMP};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let opts = BenchOpts::from_args();
    // Every arm drives a solver on the calling thread: one rank. The
    // distributed-AMR counterpart (f13) reports its real rank count the
    // same way, and `validate_reports` pins both.
    let nranks = 1usize;
    let scheme = Scheme::default_with_gamma(5.0 / 3.0);
    let reg = Arc::new(Registry::new());
    let tracer = opts.trace_path().map(|p| {
        let tr = Tracer::new_env_sized();
        tr.set_dump_path(Some(p));
        tr
    });
    let bench_t0 = Instant::now();

    // -- Arm 1: accuracy vs cost --------------------------------------
    let (prob, n_base, n_fine, max_levels) = if opts.toy {
        (Problem::sod(), 64usize, 128usize, 2usize)
    } else {
        (Problem::blast_wave_1(), 100, 400, 3)
    };
    println!(
        "# F12: AMR on {} — base {n_base} x {max_levels} levels vs uniform {n_fine}",
        prob.name
    );
    let exact = prob.exact.clone().unwrap();

    let uniform = |n: usize| -> (f64, u64) {
        let geom = PatchGeom::line(n, 0.0, 1.0, scheme.required_ghosts());
        let mut u = init_cons(geom, &scheme.eos, &|x| (prob.ic)(x));
        let mut solver = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk3, geom);
        let t0 = Instant::now();
        solver
            .advance_to(&mut u, 0.0, prob.t_end, 0.4, None)
            .unwrap();
        reg.histogram("phase.advance")
            .record(t0.elapsed().as_nanos() as u64);
        let (l1, _) = l1_density_error(&scheme, &u, &exact, prob.t_end).unwrap();
        (l1, solver.stats().zone_updates)
    };
    let (e_coarse, z_coarse) = uniform(n_base);
    let (e_fine, z_fine) = uniform(n_fine);

    // Tight shock tracking: frequent regrids with a wide flag buffer so
    // the thin relativistic shell never escapes the finest patches.
    let amr_cfg = AmrConfig {
        max_levels,
        threshold: 0.25,
        buffer: 3,
        regrid_interval: 2,
        ..AmrConfig::default()
    };
    let mut amr = AmrSolver::new(
        scheme,
        prob.bcs,
        RkOrder::Rk3,
        n_base,
        0.0,
        1.0,
        amr_cfg.clone(),
    );
    amr.set_metrics(Arc::clone(&reg));
    if let Some(tr) = &tracer {
        amr.set_trace(Arc::clone(tr), 0);
    }
    amr.init(&|x| (prob.ic)(x));
    let t0 = Instant::now();
    amr.advance_to(0.0, prob.t_end, 0.4).unwrap();
    reg.histogram("phase.advance")
        .record(t0.elapsed().as_nanos() as u64);
    let e_amr = amr.l1_density_error(&*exact, prob.t_end).unwrap();
    let z_amr = amr.cell_updates();

    let mut table = Table::new(&[
        "grid",
        "L1(rho)",
        "zone_updates",
        "err_vs_fine",
        "cost_vs_fine",
    ]);
    for (name, e, z) in [
        (format!("uniform-{n_base}"), e_coarse, z_coarse),
        (format!("uniform-{n_fine}"), e_fine, z_fine),
        (format!("amr-{n_base}x{max_levels}lvl"), e_amr, z_amr),
    ] {
        table.row(&[
            name,
            sci(e),
            z.to_string(),
            f3(e / e_fine),
            f3(z as f64 / z_fine as f64),
        ]);
    }
    table.print();
    table.save_csv("f12_amr");
    println!(
        "  levels active = {}, regrids = {}, updates/level = {:?}",
        amr.n_levels(),
        amr.regrids(),
        amr.updates_per_level()
    );
    assert!(
        e_amr < e_coarse,
        "AMR {e_amr} must beat uniform-coarse {e_coarse}"
    );
    if !opts.toy {
        assert!(
            e_amr <= 1.10 * e_fine,
            "AMR L1 {e_amr} must be within 10% of uniform-fine {e_fine}"
        );
        assert!(
            (z_amr as f64) <= 0.40 * z_fine as f64,
            "AMR updates {z_amr} must be <= 40% of uniform-fine {z_fine}"
        );
    }

    // -- Arm 2: conservation under regridding -------------------------
    let pulse = |x: [f64; 3]| {
        let g = (-((x[0] - 0.5) / 0.08).powi(2)).exp();
        Prim::new_1d(1.0 + 2.0 * g, 0.0, 1.0 + 20.0 * g)
    };
    let mut cons = AmrSolver::new(
        scheme,
        rhrsc_grid::bc::uniform(rhrsc_grid::Bc::Periodic),
        RkOrder::Rk3,
        64,
        0.0,
        1.0,
        AmrConfig {
            threshold: 0.08,
            ..amr_cfg.clone()
        },
    );
    cons.set_metrics(Arc::clone(&reg));
    cons.init(&pulse);
    let before = cons.composite_totals();
    let t0 = Instant::now();
    cons.advance_to(0.0, 0.3, 0.4).unwrap();
    reg.histogram("phase.advance")
        .record(t0.elapsed().as_nanos() as u64);
    let after = cons.composite_totals();
    let mut max_drift = 0.0f64;
    for c in 0..NCOMP {
        max_drift = max_drift.max((after[c] - before[c]).abs() / before[c].abs().max(1.0));
    }
    println!(
        "  conservation arm: {} regrids, max relative drift = {}",
        cons.regrids(),
        sci(max_drift)
    );
    assert!(cons.regrids() > 0, "conservation arm must actually regrid");
    assert!(
        max_drift <= 1e-12,
        "refluxed composite sums must hold to machine precision, drift = {max_drift}"
    );

    // -- Arm 3: kill/restart bit-identity ------------------------------
    let t_half = 0.5 * prob.t_end;
    let mk = || {
        let mut a = AmrSolver::new(
            scheme,
            prob.bcs,
            RkOrder::Rk3,
            n_base,
            0.0,
            1.0,
            amr_cfg.clone(),
        );
        a.init(&|x| (prob.ic)(x));
        a
    };
    let t0 = Instant::now();
    let mut gold = mk();
    gold.advance_to(0.0, t_half, 0.4).unwrap();
    let ckp = gold.to_checkpoint(t_half);
    let dir = std::env::temp_dir().join("rhrsc-f12-restart");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("amr.ckp");
    save_amr_checkpoint(&path, &ckp).unwrap();
    gold.advance_to(t_half, prob.t_end, 0.4).unwrap();
    let e_gold = gold.l1_density_error(&*exact, prob.t_end).unwrap();

    let mut restarted = mk();
    restarted
        .restore(&load_amr_checkpoint(&path).unwrap())
        .unwrap();
    restarted.advance_to(t_half, prob.t_end, 0.4).unwrap();
    let e_restart = restarted.l1_density_error(&*exact, prob.t_end).unwrap();
    reg.histogram("phase.advance")
        .record(t0.elapsed().as_nanos() as u64);
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "  restart arm: L1 uninterrupted = {:.17e}, restarted = {:.17e}",
        e_gold, e_restart
    );
    assert_eq!(
        e_gold.to_bits(),
        e_restart.to_bits(),
        "restart from the v4 AMR checkpoint must continue bit-identically"
    );

    if let Some(tr) = &tracer {
        if let Some(p) = opts.trace_path() {
            if tr.write_or_warn(&p) {
                println!("  -> wrote {}", p.display());
            }
        }
    }
    let snap = reg.snapshot();
    if opts.profile {
        print_phase_table("f12_amr", &snap);
    }
    RunReport::new("f12_amr")
        .config_str("problem", &prob.name)
        .config_num("n_base", n_base as f64)
        .config_num("n_fine", n_fine as f64)
        .config_num("max_levels", max_levels as f64)
        .config_num("l1_uniform_fine", e_fine)
        .config_num("l1_amr", e_amr)
        .config_num("update_ratio", z_amr as f64 / z_fine as f64)
        .config_num("conservation_drift", max_drift)
        .config_num("ranks", nranks as f64)
        .wall_time(bench_t0.elapsed().as_secs_f64())
        .parallelism(nranks as f64)
        .zone_updates((z_coarse + z_fine + z_amr) as f64)
        .write(&snap);
}
