//! F4 — Strong scaling.
//!
//! Fixed 256×256 2D problem distributed over 1..16 simulated ranks on a
//! virtual cluster (10 µs latency, 10 GB/s links). Reports the simulated
//! makespan (max per-rank virtual time), speedup, and parallel efficiency
//! for 10 RK2 steps.
//!
//! Expected shape: near-linear speedup at small rank counts, efficiency
//! decaying as the halo surface-to-volume ratio and the Δt-allreduce
//! latency grow relative to shrinking per-rank compute.
//!
//! (Ranks time-share the host physically; the virtual-time machinery
//! serializes compute sections on a CPU token so the makespan is honest —
//! see DESIGN.md "virtual cluster".)

use rhrsc_bench::{f3, Table};
use rhrsc_comm::{run, NetworkModel};
use rhrsc_grid::{bc, Bc, CartDecomp};
use rhrsc_solver::driver::{BlockSolver, DistConfig, ExchangeMode};
use rhrsc_solver::{RkOrder, Scheme};
use rhrsc_srhd::Prim;
use std::time::Duration;

fn ic(x: [f64; 3]) -> Prim {
    let r2 = (x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2);
    Prim::at_rest(1.0, if r2 < 0.01 { 100.0 } else { 1.0 })
}

fn main() {
    println!("# F4: strong scaling, 256x256, 10 RK2 steps, virtual cluster (10us, 10GB/s)");
    let model = NetworkModel::virtual_cluster(Duration::from_micros(10), 10e9);
    let nsteps = 10;
    let ranks = [1usize, 2, 4, 8, 16];

    let mut table = Table::new(&["ranks", "makespan_s", "speedup", "efficiency"]);
    let mut base = None;
    for &p in &ranks {
        let cfg = DistConfig {
            scheme: Scheme::default_with_gamma(5.0 / 3.0),
            rk: RkOrder::Rk2,
            global_n: [256, 256, 1],
            domain: ([0.0; 3], [1.0, 1.0, 1.0]),
            decomp: CartDecomp::auto(p, [256, 256, 1], [true, true, false]),
            bcs: bc::uniform(Bc::Periodic),
            cfl: 0.4,
            mode: ExchangeMode::BulkSynchronous,
            gang_threads: 0,
            dt_refresh_interval: 1,
        };
        let stats = run(p, model, |rank| {
            let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
            solver.advance_steps(rank, &mut u, nsteps).unwrap()
        });
        let makespan = stats.iter().map(|s| s.vtime).fold(0.0, f64::max);
        let base_t = *base.get_or_insert(makespan);
        let speedup = base_t / makespan;
        table.row(&[
            p.to_string(),
            format!("{makespan:.4}"),
            f3(speedup),
            f3(speedup / p as f64),
        ]);
    }
    table.print();
    table.save_csv("f4_strong_scaling");
}
