//! F4 — Strong scaling.
//!
//! Fixed 256×256 2D problem distributed over 1..16 simulated ranks on a
//! virtual cluster (10 µs latency, 10 GB/s links). Reports the simulated
//! makespan (max per-rank virtual time), speedup, and parallel efficiency
//! for 10 RK2 steps.
//!
//! Expected shape: near-linear speedup at small rank counts, efficiency
//! decaying as the halo surface-to-volume ratio and the Δt-allreduce
//! latency grow relative to shrinking per-rank compute.
//!
//! (Ranks time-share the host physically; the virtual-time machinery
//! serializes compute sections on a CPU token so the makespan is honest —
//! see DESIGN.md "virtual cluster".)
//!
//! Flags: `--toy` shrinks the sweep for smoke tests/CI, `--profile`
//! prints the phase breakdown. A machine-readable report is always
//! written to `results/BENCH_f4_strong_scaling.json`. Telemetry
//! (`RHRSC_TELEMETRY_INTERVAL` / `--telemetry-out` /
//! `--metrics-textfile`) arms on the largest rank-count sweep: the
//! solver samples per-rank metric deltas each cadence, reduces them to
//! rank 0, and the report gains a `series` section.

use rhrsc_bench::{f3, print_phase_table, BenchOpts, RunReport, Table};
use rhrsc_comm::{run, NetworkModel};
use rhrsc_grid::{bc, Bc, CartDecomp};
use rhrsc_io::FileSinks;
use rhrsc_runtime::metrics::Snapshot;
use rhrsc_runtime::{Registry, Telemetry};
use rhrsc_solver::driver::{BlockSolver, DistConfig, ExchangeMode};
use rhrsc_solver::{RkOrder, Scheme};
use rhrsc_srhd::Prim;
use std::sync::Arc;
use std::time::Duration;

fn ic(x: [f64; 3]) -> Prim {
    let r2 = (x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2);
    Prim::at_rest(1.0, if r2 < 0.01 { 100.0 } else { 1.0 })
}

fn main() {
    let opts = BenchOpts::from_args();
    let (n, nsteps, ranks): (usize, usize, &[usize]) = if opts.toy {
        (64, 4, &[1, 2, 4])
    } else {
        (256, 10, &[1, 2, 4, 8, 16])
    };
    println!("# F4: strong scaling, {n}x{n}, {nsteps} RK2 steps, virtual cluster (10us, 10GB/s)");
    let model = NetworkModel::virtual_cluster(Duration::from_micros(10), 10e9);
    let telemetry_cfg = opts.telemetry_config();
    let max_ranks = *ranks.last().unwrap();
    // Ranks keep separate registries (merged below), so the telemetry
    // sampler sees honest per-rank deltas rather than pooled totals.
    let mut pooled = Snapshot::default();
    let mut hub_for_report: Option<Arc<Telemetry>> = None;
    let mut wall_total = 0.0;
    let mut zu_total = 0.0;

    let mut table = Table::new(&["ranks", "makespan_s", "speedup", "efficiency"]);
    let mut base = None;
    for &p in ranks {
        let cfg = DistConfig {
            scheme: Scheme::default_with_gamma(5.0 / 3.0),
            rk: RkOrder::Rk2,
            global_n: [n, n, 1],
            domain: ([0.0; 3], [1.0, 1.0, 1.0]),
            decomp: CartDecomp::auto(p, [n, n, 1], [true, true, false]),
            bcs: bc::uniform(Bc::Periodic),
            cfl: 0.4,
            mode: ExchangeMode::BulkSynchronous,
            gang_threads: 0,
            // Guarded cadence: coast on 0.9× the cached Δt, refresh on
            // the AIMD window (violations collapse it — see a3).
            dt_refresh_interval: 5,
        };
        let regs: Vec<Arc<Registry>> = (0..p).map(|_| Arc::new(Registry::new())).collect();
        // Telemetry arms on the largest sweep only: one run = one
        // monotone step series, reduced across the full rank count.
        let hub = (p == max_ranks)
            .then(|| telemetry_cfg.map(|c| Arc::new(Telemetry::new(c))))
            .flatten();
        if let Some(h) = &hub {
            h.set_sink(Box::new(FileSinks::new(
                opts.metrics_textfile.clone(),
                opts.telemetry_out.clone(),
            )));
        }
        let stats = run(p, model, |rank| {
            let reg = regs[rank.rank()].clone();
            rank.set_metrics(reg.clone());
            let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
            solver.set_metrics(reg);
            if let Some(h) = &hub {
                solver.set_telemetry(h.clone());
            }
            solver.advance_steps(rank, &mut u, nsteps).unwrap()
        });
        for r in &regs {
            pooled.merge(&r.snapshot());
        }
        if hub.is_some() {
            hub_for_report = hub;
        }
        let makespan = stats.iter().map(|s| s.vtime).fold(0.0, f64::max);
        wall_total += makespan;
        zu_total += stats.iter().map(|s| s.zone_updates as f64).sum::<f64>();
        let base_t = *base.get_or_insert(makespan);
        let speedup = base_t / makespan;
        table.row(&[
            p.to_string(),
            format!("{makespan:.4}"),
            f3(speedup),
            f3(speedup / p as f64),
        ]);
    }
    table.print();
    table.save_csv("f4_strong_scaling");

    if opts.profile {
        print_phase_table("f4_strong_scaling (all rank counts pooled)", &pooled);
    }
    let mut report = RunReport::new("f4_strong_scaling");
    if let Some(hub) = &hub_for_report {
        report.series(&hub.samples());
    }
    report
        .config_str("preset", if opts.toy { "toy" } else { "full" })
        .config_str("model", "virtual_cluster(10us, 10GB/s)")
        .config_num("global_n", n as f64)
        .config_num("nsteps", nsteps as f64)
        .config_num("max_ranks", max_ranks as f64)
        .config_str("mode", "bulk-sync")
        .config_num("dt_refresh_interval", 5.0)
        .config_str("clock", "virtual")
        .wall_time(wall_total)
        .parallelism(max_ranks as f64)
        .zone_updates(zu_total)
        .write(&pooled);
}
