//! F10 — Fault tolerance of the resilient distributed driver.
//!
//! A 2D relativistic blast wave on 2×2 ranks runs to `t_end` four times:
//!
//! * **A (reference)** — plain `advance_to`, no faults,
//! * **B (resilient, no faults)** — `advance_to_with_restart` with
//!   injection disabled; must be **bit-identical** to A with every
//!   resilience counter at zero,
//! * **C (resilient, faulted)** — truncated and delayed halo messages
//!   plus in-memory cell corruption under a deterministic seed; the run
//!   must still reach `t_end`, repairing cells through the recovery
//!   cascade, retrying steps at halved CFL, and restoring from the
//!   rotating checkpoints when retries run out. Reports the per-tier
//!   cascade counts, retry/restart counters, and the L1 density error
//!   against A (acceptance: within 5%),
//! * **D (device faults)** — the single-patch offload path with failing
//!   kernel launches and device copies, with the circuit breaker armed;
//!   the transparent host-fallback (per-op and breaker-quarantine) must
//!   keep results bit-identical to the host while the virtual-time cost
//!   model records the slowdown and the `dev.breaker.*` counters record
//!   the trip/probe/readmit traffic.
//!
//! Flags: `--toy` shrinks the grid and horizon for smoke tests/CI,
//! `--profile` prints the pooled phase breakdown, `--trace-out <path>`
//! (or `RHRSC_TRACE`) dumps a Chrome/Perfetto flight record of run D's
//! device queue including the breaker transitions. A machine-readable
//! report is always written to `results/BENCH_f10_fault_tolerance.json`.

use rhrsc_bench::{print_phase_table, sci, BenchOpts, RunReport, Table};
use rhrsc_comm::{run_with_faults, FaultPlan, NetworkModel};
use rhrsc_grid::{bc, Bc, CartDecomp, Field, PatchGeom};
use rhrsc_runtime::trace::Tracer;
use rhrsc_runtime::{AcceleratorConfig, FaultInjector, Registry};
use rhrsc_solver::device_backend::{BreakerConfig, DevicePatchSolver};
use rhrsc_solver::driver::{
    gather_global, BlockSolver, DistConfig, ExchangeMode, ResilienceConfig, ResilienceStats,
};
use rhrsc_solver::scheme::init_cons;
use rhrsc_solver::{PatchSolver, RkOrder, Scheme};
use rhrsc_srhd::Prim;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn ic(x: [f64; 3]) -> Prim {
    let r2 = (x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2);
    Prim::at_rest(1.0, if r2 < 0.01 { 100.0 } else { 1.0 })
}

fn dist_cfg(n: usize) -> DistConfig {
    DistConfig {
        scheme: Scheme::default_with_gamma(5.0 / 3.0),
        rk: RkOrder::Rk3,
        global_n: [n, n, 1],
        domain: ([0.0; 3], [1.0, 1.0, 1.0]),
        decomp: CartDecomp {
            dims: [2, 2, 1],
            periodic: [false, false, false],
        },
        bcs: bc::uniform(Bc::Outflow),
        cfl: 0.4,
        mode: ExchangeMode::Overlap,
        gang_threads: 0,
        dt_refresh_interval: 1,
    }
}

/// Relative L1 difference of the lab-frame density (component 0).
fn l1_rel_density(a: &Field, b: &Field) -> f64 {
    let (mut num, mut den) = (0.0, 0.0);
    let n = a.geom().len();
    for i in 0..n {
        num += (a.raw()[i] - b.raw()[i]).abs();
        den += b.raw()[i].abs();
    }
    num / den
}

fn resilient_run(
    cfg: &DistConfig,
    t_end: f64,
    plan: Option<FaultPlan>,
    res: &ResilienceConfig,
    reg: &Arc<Registry>,
) -> (Field, ResilienceStats, u64) {
    let outs = run_with_faults(4, NetworkModel::ideal(), plan, |rank| {
        rank.set_metrics(reg.clone());
        let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
        solver.set_metrics(reg.clone());
        let (_, rstats) = solver
            .advance_to_with_restart(rank, &mut u, 0.0, t_end, res)
            .expect("resilient advance failed");
        let truncated = rank
            .fault_stats()
            .map(|s| s.msgs_truncated + s.msgs_delayed)
            .unwrap_or(0);
        (
            gather_global(rank, cfg, &u).expect("gather failed"),
            rstats,
            truncated,
        )
    });
    let faults: u64 = outs.iter().map(|(_, _, f)| f).sum();
    let rstats = outs[0].1;
    let global = outs
        .into_iter()
        .next()
        .and_then(|(g, _, _)| g)
        .expect("rank 0 holds the gathered field");
    (global, rstats, faults)
}

fn main() {
    let opts = BenchOpts::from_args();
    let (n, t_end) = if opts.toy { (32, 0.05) } else { (64, 0.1) };
    println!("# F10: fault tolerance, 2D blast {n}x{n}, 2x2 ranks, RK3 overlap, t_end = {t_end}");
    let cfg = dist_cfg(n);
    let reg = Arc::new(Registry::new());
    let bench_t0 = Instant::now();
    let ckp_dir = std::env::temp_dir().join("rhrsc-f10-checkpoints");
    let _ = std::fs::remove_dir_all(&ckp_dir);

    // ---- Run A: fault-free reference (plain driver) ----
    let outs = run_with_faults(4, NetworkModel::ideal(), None, |rank| {
        rank.set_metrics(reg.clone());
        let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
        solver.set_metrics(reg.clone());
        solver
            .advance_to(rank, &mut u, 0.0, t_end)
            .expect("reference advance failed");
        gather_global(rank, &cfg, &u).expect("gather failed")
    });
    let reference = outs
        .into_iter()
        .next()
        .flatten()
        .expect("rank 0 holds the gathered field");
    println!("A  reference: plain advance_to, no faults");

    // ---- Run B: resilient loop, injection disabled ----
    let res_b = ResilienceConfig {
        checkpoint_interval: 5,
        checkpoint_dir: Some(ckp_dir.join("run-b")),
        ..ResilienceConfig::default()
    };
    let (state_b, rstats_b, _) = resilient_run(&cfg, t_end, None, &res_b, &reg);
    let bit_identical = state_b.raw() == reference.raw();
    assert!(
        bit_identical,
        "run B must be bit-identical to the reference"
    );
    assert_eq!(rstats_b.retries, 0);
    assert_eq!(rstats_b.restarts, 0);
    assert_eq!(rstats_b.recovery.total(), 0);
    println!(
        "B  resilient, faults off: bit-identical = {bit_identical}, \
         retries = {}, restarts = {}, repaired cells = {}",
        rstats_b.retries,
        rstats_b.restarts,
        rstats_b.recovery.total()
    );

    // ---- Run C: resilient loop under an active fault schedule ----
    // `RHRSC_FAULT_SEED` lets CI sweep a small seed matrix; the default
    // keeps local runs reproducible.
    let seed: u64 = std::env::var("RHRSC_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let plan = FaultPlan {
        seed,
        msg_truncate_prob: 0.01,
        msg_delay_prob: 0.05,
        msg_delay: Duration::from_micros(200),
        cell_poison_prob: 0.1,
        ..FaultPlan::disabled()
    };
    let res_c = ResilienceConfig {
        max_step_retries: 1,
        max_restarts: 100,
        checkpoint_interval: 4,
        checkpoint_dir: Some(ckp_dir.join("run-c")),
        ..ResilienceConfig::default()
    };
    let fault_seed = plan.seed;
    let (state_c, rstats_c, msg_faults) = resilient_run(&cfg, t_end, Some(plan), &res_c, &reg);
    let l1 = l1_rel_density(&state_c, &reference);
    println!(
        "C  resilient, faults on: {msg_faults} messages truncated/delayed, \
         cascade tiers = (relaxed {}, neighbor {}, atmosphere {}), \
         retried steps = {}, retries = {}, restarts = {}, checkpoints = {}",
        rstats_c.recovery.relaxed_tol,
        rstats_c.recovery.neighbor_avg,
        rstats_c.recovery.atmosphere,
        rstats_c.retried_steps,
        rstats_c.retries,
        rstats_c.restarts,
        rstats_c.checkpoints_saved
    );
    println!("C  relative L1 density error vs fault-free = {}", sci(l1));
    assert!(
        l1 < 0.05,
        "faulted run drifted more than 5% from the fault-free solution"
    );

    // ---- Run D: device offload with failing launches and copies ----
    // Run D is a cheap single patch, so it keeps a horizon long enough
    // for the breaker to trip *and* serve quarantine steps even in toy
    // mode (the toy distributed horizon would end after ~3 steps).
    let t_end_d = if opts.toy { 0.1 } else { t_end };
    let scheme = cfg.scheme;
    let geom = PatchGeom::rect([n, n], [0.0, 0.0], [1.0, 1.0], scheme.required_ghosts());
    let bcs = bc::uniform(Bc::Outflow);
    let u0 = init_cons(geom, &scheme.eos, &|x| ic(x));
    let mut u_host = u0.clone();
    let mut host = PatchSolver::new(scheme, bcs, RkOrder::Rk3, geom);
    host.advance_to(&mut u_host, 0.0, t_end_d, cfg.cfl, None)
        .expect("host advance failed");
    let dev_cfg = AcceleratorConfig {
        throughput_multiplier: 8.0,
        ..AcceleratorConfig::default()
    };
    let dev_plan = FaultPlan {
        seed: 9,
        launch_fail_prob: 0.2,
        copy_fail_prob: 0.9,
        ..FaultPlan::disabled()
    };
    let mut dev = DevicePatchSolver::new(dev_cfg, scheme, bcs, RkOrder::Rk3, geom);
    dev.set_metrics(reg.clone());
    dev.set_breaker(BreakerConfig::default());
    dev.set_fault_injector(Arc::new(FaultInjector::new(dev_plan, 0)));
    // The optional flight record covers run D's device queue: H2D/launch/
    // D2H spans plus the breaker trip/half-open/probe/readmit instants.
    let tracer = opts.trace_path().map(|p| {
        let tr = Tracer::new_env_sized();
        tr.set_dump_path(Some(p));
        tr
    });
    if let Some(tr) = &tracer {
        dev.set_trace(tr.clone(), 0);
    }
    dev.upload(&u0).get();
    dev.advance_to(0.0, t_end_d, cfg.cfl);
    let u_dev = dev.download();
    let dev_stats = dev.fault_stats().expect("injector attached");
    let brk = dev.breaker_stats().expect("breaker armed");
    let dev_identical = u_dev.raw() == u_host.raw();
    assert!(dev_identical, "device fallback must stay bit-identical");
    assert!(
        brk.trips >= 1 && brk.host_steps >= 1,
        "the 90% copy-fault schedule must trip the breaker at least once \
         (trips = {}, host_steps = {})",
        brk.trips,
        brk.host_steps
    );
    println!(
        "D  device offload, faults on: bit-identical to host = {dev_identical}, \
         launches failed (host fallback) = {}, copies retried = {}, \
         breaker trips = {}, host-quarantine steps = {}, readmissions = {}, \
         modeled device time = {:.2?}",
        dev_stats.launches_failed,
        dev_stats.copies_failed,
        brk.trips,
        brk.host_steps,
        brk.readmissions,
        dev.device_time()
    );
    if let Some(tr) = &tracer {
        if let Some(p) = opts.trace_path() {
            if tr.write_or_warn(&p) {
                println!("  -> wrote {}", p.display());
            }
        }
    }

    let mut table = Table::new(&[
        "run",
        "msg_faults",
        "cells_repaired",
        "retries",
        "restarts",
        "l1_rel_density",
    ]);
    table.row(&[
        "B:no-faults".into(),
        "0".into(),
        rstats_b.recovery.total().to_string(),
        rstats_b.retries.to_string(),
        rstats_b.restarts.to_string(),
        "0".into(),
    ]);
    table.row(&[
        "C:faulted".into(),
        msg_faults.to_string(),
        rstats_c.recovery.total().to_string(),
        rstats_c.retries.to_string(),
        rstats_c.restarts.to_string(),
        sci(l1),
    ]);
    table.print();
    table.save_csv("f10_fault_tolerance");
    let _ = std::fs::remove_dir_all(&ckp_dir);

    let snap = reg.snapshot();
    if opts.profile {
        print_phase_table("f10_fault_tolerance (all runs pooled)", &snap);
    }
    RunReport::new("f10_fault_tolerance")
        .config_str("problem", "2D blast, 2x2 ranks, RK3 overlap")
        .config_num("global_n", n as f64)
        .config_num("t_end", t_end)
        .config_num("fault_seed", fault_seed as f64)
        .config_num("msg_faults", msg_faults as f64)
        .config_num("cells_repaired", rstats_c.recovery.total() as f64)
        .config_num("retries", rstats_c.retries as f64)
        .config_num("restarts", rstats_c.restarts as f64)
        .config_num("l1_rel_density", l1)
        .config_num("breaker_trips", brk.trips as f64)
        .config_num("breaker_host_steps", brk.host_steps as f64)
        .config_num("breaker_readmissions", brk.readmissions as f64)
        .config_num("device_failures", brk.device_failures as f64)
        .wall_time(bench_t0.elapsed().as_secs_f64())
        .parallelism(4.0)
        .write(&snap);
}
