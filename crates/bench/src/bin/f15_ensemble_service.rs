//! F15 — Ensemble service: a multi-tenant job engine over the solver.
//!
//! Drives [`rhrsc_serve::EnsembleEngine`] through the full multi-tenancy
//! contract on one work-stealing pool:
//!
//! * **A (mixed priorities)** — a batch sweep flood, a scavenger
//!   backfill, and late-arriving interactive jobs share the engine.
//!   Strict-priority claiming must order the per-class p99 latency:
//!   interactive < batch ≤ scavenger. Headline: sustained jobs/sec,
//! * **B (backpressure)** — with every pool worker parked on a gate, a
//!   greedy tenant over-submits against a tiny queue cap; admission
//!   control must reject the overflow deterministically and recover
//!   (accept again) once the backlog drains,
//! * **C (duplicated sweep)** — the same batch-submitted CFL sweep runs
//!   twice; the second pass must be served entirely from the
//!   content-addressed result cache, and the cached bits must be
//!   identical to a cache-disabled rerun of the same spec,
//! * **D (fault isolation)** — a hostile tenant's jobs carry per-job
//!   fault plans (cell poisoning + worker stalls) and are expected to
//!   fail after retries; a healthy tenant's interactive jobs run
//!   concurrently and must all complete with p99 within a pinned
//!   multiple of their solo baseline. `serve.isolation.breach` (a clean
//!   job failing) is pinned to **zero**,
//! * **E (cancellation)** — queued jobs cancelled by token release
//!   their slot without running; zero deadlines expire at the first
//!   step boundary; engine shutdown resolves still-queued jobs as
//!   cancelled instead of hanging their waiters.
//!
//! Flags: `--toy` shrinks the workload for smoke tests/CI, `--profile`
//! prints the pooled phase breakdown. A machine-readable report with
//! the `serve.*` counters and a telemetry series (one sample per arm)
//! is always written to `results/BENCH_f15_ensemble_service.json`.
//!
//! Env knobs: `RHRSC_FAULT_SEED` (CI seed matrix, perturbs the hostile
//! tenant's draw streams only) and the engine's `RHRSC_SERVE_*` family
//! (documented in README) for runs built on the config defaults.

use rhrsc_bench::{f3, print_phase_table, BenchOpts, RunReport, Table};
use rhrsc_runtime::fault::FaultPlan;
use rhrsc_runtime::metrics::Snapshot;
use rhrsc_runtime::telemetry::{SampleInputs, TelemetrySampler};
use rhrsc_runtime::{Registry, WorkStealingPool};
use rhrsc_serve::{
    EngineConfig, EnsembleEngine, JobHandle, JobOutcome, JobRequest, Priority, ProblemKind,
    ScenarioSpec,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pool width — fixed (not host-derived) so the run config is stable
/// across CI machines.
const THREADS: usize = 4;

/// A density-wave spec with a per-index advection velocity: every job
/// in a flood hashes distinct, so nothing short-circuits through the
/// result cache unless an arm wants it to.
fn wave(i: usize, n: usize, nx: usize, t_end: f64) -> ScenarioSpec {
    let v = 0.1 + 0.7 * (i as f64 + 1.0) / (n as f64 + 1.0);
    ScenarioSpec {
        t_end: Some(t_end),
        ..ScenarioSpec::new(ProblemKind::DensityWave { v, amplitude: 0.3 }, nx)
    }
}

fn p99_ns(snap: &Snapshot, name: &str) -> f64 {
    snap.histograms
        .get(name)
        .map(|h| h.quantile(0.99))
        .unwrap_or(0.0)
}

fn wait_all(handles: Vec<JobHandle>) -> Vec<JobOutcome> {
    handles.into_iter().map(JobHandle::wait).collect()
}

fn done(outcomes: &[JobOutcome]) -> usize {
    outcomes
        .iter()
        .filter(|o| matches!(o, JobOutcome::Done(_)))
        .count()
}

/// Park every pool worker on the gate. Blockers are injected ahead of
/// any engine runner task, so until the gate opens nothing submitted to
/// an engine on this pool can be claimed — queue depths are exact.
fn park_workers(
    pool: &Arc<WorkStealingPool>,
    gate: &Arc<AtomicBool>,
) -> Vec<rhrsc_runtime::Future<()>> {
    (0..pool.nthreads())
        .map(|_| {
            let g = gate.clone();
            pool.spawn(move || {
                while !g.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_micros(50));
                }
            })
        })
        .collect()
}

#[allow(clippy::too_many_lines)]
fn main() {
    let opts = BenchOpts::from_args();
    // (flood nx, flood t_end, batch, scavenger, interactive, sweep,
    //  hostile, healthy, cancel, deadline, shutdown-queued)
    let (nx, t_end, n_batch, n_scav, n_inter, n_sweep, n_mal, n_alice, n_cancel, n_dead, n_shut) =
        if opts.toy {
            (96, 0.2, 48, 6, 8, 24, 12, 10, 24, 4, 8)
        } else {
            (192, 0.4, 400, 24, 40, 96, 32, 24, 64, 8, 16)
        };
    let seed: u64 = std::env::var("RHRSC_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);
    println!(
        "# F15: ensemble service, {THREADS}-worker pool, density-wave floods at nx = {nx}, \
         fault seed {seed}"
    );
    let pool = Arc::new(WorkStealingPool::new(THREADS));
    // Flood arms submit whole sweeps per tenant up front; size admission
    // so only arm B (which tests the bounds) ever rejects.
    let roomy = EngineConfig {
        tenant_queue_cap: 4096,
        max_pending: 8192,
        ..EngineConfig::default()
    };
    let t_bench = Instant::now();
    let mut wall_total = 0.0;
    let mut pooled = Snapshot::default();
    let mut sampler = TelemetrySampler::new(1);
    let mut samples = Vec::new();
    let mut table = Table::new(&["arm", "wall_s", "jobs", "outcome"]);
    // One telemetry sample per finished arm: the serve.* series fields
    // carry that arm's counter deltas.
    let mut sample_arm = |arm: u64, pooled: &Snapshot, wall: f64| {
        let inputs = SampleInputs {
            elapsed_s: wall,
            pool_queue_depth: rhrsc_runtime::global_queue_depth() as f64,
            serve_queue_depth: 0.0, // every arm drains before sampling
            ..SampleInputs::default()
        };
        samples.push(sampler.sample(
            arm,
            t_bench.elapsed().as_secs_f64(),
            t_bench.elapsed().as_nanos() as u64,
            pooled.clone(),
            &inputs,
        ));
    };

    // ---- Arm A: mixed-priority sustained throughput ----
    let reg_a = Arc::new(Registry::new());
    let engine_a = EnsembleEngine::new(pool.clone(), reg_a.clone(), roomy);
    let t0 = Instant::now();
    let wall_a;
    {
        let _ph = reg_a.phase("phase.serve.mixed");
        let mut handles = Vec::new();
        for i in 0..n_batch {
            let req = JobRequest::new("sweep", Priority::Batch, wave(i, n_batch, nx, t_end));
            handles.push(engine_a.submit(req).expect("batch admission"));
        }
        for i in 0..n_scav {
            let spec = wave(i, n_scav, nx / 2, t_end);
            let req = JobRequest::new("idle", Priority::Scavenger, spec);
            handles.push(engine_a.submit(req).expect("scavenger admission"));
        }
        // Interactive arrivals land behind a deep backlog; strict
        // priority must still pull them forward.
        for i in 0..n_inter {
            let spec = ScenarioSpec {
                cfl: 0.3 + 0.002 * i as f64,
                t_end: Some(t_end / 2.0),
                ..ScenarioSpec::new(ProblemKind::Sod, nx / 2)
            };
            let req = JobRequest::new("dash", Priority::Interactive, spec);
            handles.push(engine_a.submit(req).expect("interactive admission"));
        }
        let n_jobs = handles.len();
        let outcomes = wait_all(handles);
        wall_a = t0.elapsed().as_secs_f64();
        assert_eq!(done(&outcomes), n_jobs, "every mixed-arm job completes");
    }
    let snap_a = reg_a.snapshot();
    let (p_inter, p_batch, p_scav) = (
        p99_ns(&snap_a, "serve.latency.interactive"),
        p99_ns(&snap_a, "serve.latency.batch"),
        p99_ns(&snap_a, "serve.latency.scavenger"),
    );
    let n_jobs_a = n_batch + n_scav + n_inter;
    let jps = n_jobs_a as f64 / wall_a;
    reg_a
        .histogram("serve.mixed.jobs_per_sec")
        .record(jps.round().max(1.0) as u64);
    println!(
        "A  mixed priorities: {n_jobs_a} jobs in {wall_a:.3}s ({} jobs/s); p99 latency \
         interactive = {:.2} ms < batch = {:.2} ms <= scavenger = {:.2} ms",
        f3(jps),
        p_inter * 1e-6,
        p_batch * 1e-6,
        p_scav * 1e-6
    );
    assert!(
        p_inter < p_batch,
        "interactive p99 ({p_inter} ns) must beat batch p99 ({p_batch} ns)"
    );
    assert!(
        p_batch <= p_scav * 1.05,
        "batch p99 ({p_batch} ns) must not exceed scavenger p99 ({p_scav} ns)"
    );
    wall_total += wall_a;
    pooled.merge(&snap_a);
    sample_arm(1, &pooled, wall_a);
    table.row(&[
        "A:mixed".into(),
        format!("{wall_a:.3}"),
        n_jobs_a.to_string(),
        format!("{} jobs/s, class-ordered p99", f3(jps)),
    ]);

    // ---- Arm B: admission control and backpressure ----
    let reg_b = Arc::new(Registry::new());
    let cfg_b = EngineConfig {
        tenant_queue_cap: 4,
        max_pending: 8,
        cache_capacity: 0,
        ..EngineConfig::default()
    };
    let engine_b = EnsembleEngine::new(pool.clone(), reg_b.clone(), cfg_b);
    let t0 = Instant::now();
    let wall_b;
    let (n_over, n_rejected);
    {
        let _ph = reg_b.phase("phase.serve.backpressure");
        let gate = Arc::new(AtomicBool::new(false));
        let blockers = park_workers(&pool, &gate);
        n_over = cfg_b.tenant_queue_cap + 6;
        let mut admitted = Vec::new();
        let mut rejected = 0usize;
        for i in 0..n_over {
            let req = JobRequest::new("greedy", Priority::Batch, wave(i, n_over, nx, t_end));
            match engine_b.submit(req) {
                Ok(h) => admitted.push(h),
                Err(_) => rejected += 1,
            }
        }
        n_rejected = rejected;
        assert_eq!(
            admitted.len(),
            cfg_b.tenant_queue_cap,
            "exactly the queue cap is admitted while the pool is parked"
        );
        assert_eq!(n_rejected, 6, "the overflow is rejected, not queued");
        gate.store(true, Ordering::Release);
        for b in blockers {
            b.get();
        }
        let outcomes = wait_all(admitted);
        assert_eq!(done(&outcomes), cfg_b.tenant_queue_cap);
        // Recovery: once the backlog drained, the same tenant is
        // admitted again.
        let req = JobRequest::new(
            "greedy",
            Priority::Batch,
            wave(n_over, n_over + 1, nx, t_end),
        );
        let h = engine_b.submit(req).expect("admission recovers post-drain");
        assert!(matches!(h.wait(), JobOutcome::Done(_)));
        wall_b = t0.elapsed().as_secs_f64();
    }
    println!(
        "B  backpressure: cap {} held, {n_rejected}/{n_over} over-submissions rejected, \
         tenant recovered after drain, wall = {wall_b:.3}s",
        cfg_b.tenant_queue_cap
    );
    wall_total += wall_b;
    pooled.merge(&reg_b.snapshot());
    sample_arm(2, &pooled, wall_b);
    table.row(&[
        "B:backpressure".into(),
        format!("{wall_b:.3}"),
        (n_over + 1).to_string(),
        format!("{n_rejected} rejected, then recovered"),
    ]);

    // ---- Arm C: duplicated sweep through the result cache ----
    let reg_c = Arc::new(Registry::new());
    let engine_c = EnsembleEngine::new(pool.clone(), reg_c.clone(), roomy);
    let t0 = Instant::now();
    let (wall_cold, wall_warm, hits);
    {
        let _ph = reg_c.phase("phase.serve.sweep");
        // One setup (same problem + resolution), distinct CFL per point:
        // the batch API builds the initial state once and warm-starts
        // every job from it.
        let sweep = |tenant: &str| -> Vec<JobRequest> {
            (0..n_sweep)
                .map(|i| {
                    let spec = ScenarioSpec {
                        cfl: 0.25 + 0.004 * i as f64,
                        t_end: Some(t_end / 2.0),
                        ..ScenarioSpec::new(ProblemKind::Sod, nx)
                    };
                    JobRequest::new(tenant, Priority::Batch, spec)
                })
                .collect()
        };
        let first: Vec<JobHandle> = engine_c
            .submit_batch(sweep("sweep"))
            .into_iter()
            .map(|r| r.expect("cold sweep admission"))
            .collect();
        let cold = wait_all(first);
        wall_cold = t0.elapsed().as_secs_f64();
        assert_eq!(done(&cold), n_sweep);
        let t1 = Instant::now();
        let second: Vec<JobHandle> = engine_c
            .submit_batch(sweep("sweep"))
            .into_iter()
            .map(|r| r.expect("warm sweep admission"))
            .collect();
        let warm = wait_all(second);
        wall_warm = t1.elapsed().as_secs_f64();
        assert_eq!(done(&warm), n_sweep);
        hits = reg_c.snapshot().counters["serve.cache.hits"];
        assert!(
            hits >= n_sweep as u64,
            "the duplicated sweep must be served from cache (hits = {hits})"
        );
        // Cached results are the same Arc the cold pass produced …
        for (c, w) in cold.iter().zip(&warm) {
            let (c, w) = (c.result().unwrap(), w.result().unwrap());
            assert!(Arc::ptr_eq(c, w), "cache hit must return the stored Arc");
        }
        // … and bit-identical to an uncached rerun of the same spec.
        let reg_u = Arc::new(Registry::new());
        let cfg_u = EngineConfig {
            cache_capacity: 0,
            ..roomy
        };
        let engine_u = EnsembleEngine::new(pool.clone(), reg_u, cfg_u);
        let probe = sweep("verify").swap_remove(0);
        let fresh = engine_u.submit(probe).expect("uncached probe").wait();
        let (fresh, cached) = (fresh.result().unwrap(), cold[0].result().unwrap());
        assert_eq!(fresh.steps, cached.steps);
        assert_eq!(fresh.t_final.to_bits(), cached.t_final.to_bits());
        assert!(
            fresh
                .data
                .iter()
                .zip(&cached.data)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "cached result must be bit-identical to an uncached run"
        );
    }
    println!(
        "C  duplicated sweep: cold pass {wall_cold:.3}s, warm pass {wall_warm:.3}s, \
         {hits} cache hits, cached bits == uncached rerun"
    );
    wall_total += wall_cold + wall_warm;
    pooled.merge(&reg_c.snapshot());
    sample_arm(3, &pooled, wall_cold + wall_warm);
    table.row(&[
        "C:cache".into(),
        format!("{:.3}", wall_cold + wall_warm),
        (2 * n_sweep + 1).to_string(),
        format!("{hits} hits, bit-identical"),
    ]);

    // ---- Arm D: fault isolation across tenants ----
    let reg_d0 = Arc::new(Registry::new());
    let engine_d0 = EnsembleEngine::new(pool.clone(), reg_d0.clone(), roomy);
    let reg_d = Arc::new(Registry::new());
    // Pin the breach counter into the report even when (as required)
    // it never fires.
    let _ = reg_d.counter("serve.isolation.breach");
    let engine_d = EnsembleEngine::new(pool.clone(), reg_d.clone(), roomy);
    let alice_jobs = |tenant: &str| -> Vec<JobRequest> {
        (0..n_alice)
            .map(|i| JobRequest::new(tenant, Priority::Interactive, wave(i, n_alice, nx, t_end)))
            .collect()
    };
    let t0 = Instant::now();
    let (wall_d, p_solo, p_mixed, mal_failed);
    {
        let _ph = reg_d.phase("phase.serve.isolation");
        // Solo baseline: the healthy tenant with the engine to itself.
        let solo = wait_all(
            alice_jobs("alice")
                .into_iter()
                .map(|r| engine_d0.submit(r).expect("solo admission"))
                .collect(),
        );
        assert_eq!(done(&solo), n_alice);
        p_solo = p99_ns(&reg_d0.snapshot(), "serve.latency.interactive");
        // Mixed: a hostile tenant poisons cells and stalls its workers
        // under per-job fault plans; the healthy tenant runs the exact
        // same workload concurrently.
        let mut mal_handles = Vec::new();
        for i in 0..n_mal {
            let plan = FaultPlan {
                seed: seed.wrapping_add(i as u64),
                cell_poison_prob: 0.6,
                stall_rank: Some(0),
                stall_factor: 6.0,
                ..FaultPlan::disabled()
            };
            let req = JobRequest::new("mallory", Priority::Batch, wave(i, n_mal, nx, t_end))
                .with_faults(plan);
            mal_handles.push(engine_d.submit(req).expect("hostile admission"));
        }
        let alice_handles: Vec<JobHandle> = alice_jobs("alice")
            .into_iter()
            .map(|r| engine_d.submit(r).expect("healthy admission"))
            .collect();
        let alice_out = wait_all(alice_handles);
        let mal_out = wait_all(mal_handles);
        assert_eq!(
            done(&alice_out),
            n_alice,
            "every healthy-tenant job must complete despite the hostile tenant"
        );
        mal_failed = mal_out
            .iter()
            .filter(|o| matches!(o, JobOutcome::Failed(_)))
            .count();
        assert!(
            mal_failed > 0,
            "the poisoned tenant's jobs must fail (in isolation)"
        );
        wall_d = t0.elapsed().as_secs_f64();
    }
    let snap_d = reg_d.snapshot();
    p_mixed = p99_ns(&snap_d, "serve.latency.interactive");
    let bound = (25.0 * p_solo).max(0.25e9);
    println!(
        "D  isolation: hostile tenant {mal_failed}/{n_mal} failed+contained \
         ({} poisons, {} stalls, {} retries), healthy p99 {:.2} ms (solo {:.2} ms, \
         bound {:.0} ms), breaches = {}",
        snap_d.counters.get("serve.faults.poisoned").unwrap_or(&0),
        snap_d.counters.get("serve.faults.stalls").unwrap_or(&0),
        snap_d.counters.get("serve.retries").unwrap_or(&0),
        p_mixed * 1e-6,
        p_solo * 1e-6,
        bound * 1e-6,
        snap_d.counters["serve.isolation.breach"]
    );
    assert!(
        p_mixed <= bound,
        "healthy-tenant p99 {p_mixed} ns exceeds the pinned bound {bound} ns"
    );
    assert_eq!(
        snap_d.counters["serve.isolation.breach"], 0,
        "a clean job failed — another tenant's faults leaked"
    );
    assert!(snap_d.counters["serve.faults.poisoned"] > 0);
    assert!(snap_d.counters["serve.faults.stalls"] > 0);
    wall_total += wall_d;
    pooled.merge(&reg_d0.snapshot());
    pooled.merge(&snap_d);
    sample_arm(4, &pooled, wall_d);
    table.row(&[
        "D:isolation".into(),
        format!("{wall_d:.3}"),
        (2 * n_alice + n_mal).to_string(),
        format!("{mal_failed} contained, 0 breaches"),
    ]);

    // ---- Arm E: cancellation, deadlines, shutdown ----
    let reg_e = Arc::new(Registry::new());
    let cfg_e = EngineConfig {
        cache_capacity: 0,
        ..roomy
    };
    let engine_e = EnsembleEngine::new(pool.clone(), reg_e.clone(), cfg_e);
    let t0 = Instant::now();
    let (wall_e, n_cancelled);
    {
        let _ph = reg_e.phase("phase.serve.cancel");
        let handles: Vec<JobHandle> = (0..n_cancel)
            .map(|i| {
                let req = JobRequest::new("churn", Priority::Batch, wave(i, n_cancel, nx, t_end));
                engine_e.submit(req).expect("churn admission")
            })
            .collect();
        // Cancel the queued back half immediately: claimed jobs observe
        // the token at their next step boundary, queued ones at claim.
        for h in &handles[n_cancel / 2..] {
            h.cancel();
        }
        let outcomes = wait_all(handles);
        let token_cancelled = outcomes
            .iter()
            .filter(|o| matches!(o, JobOutcome::Cancelled(_)))
            .count();
        assert!(
            token_cancelled >= n_cancel / 4,
            "most of the cancelled half must resolve Cancelled, got {token_cancelled}"
        );
        // Zero deadlines expire at the first step boundary.
        let dead = wait_all(
            (0..n_dead)
                .map(|i| {
                    let req =
                        JobRequest::new("late", Priority::Batch, wave(i, n_dead, nx / 2, t_end))
                            .with_deadline(Duration::ZERO);
                    engine_e.submit(req).expect("deadline admission")
                })
                .collect(),
        );
        assert!(
            dead.iter().all(|o| matches!(o, JobOutcome::Cancelled(_))),
            "zero-deadline jobs must expire"
        );
        // Shutdown with a provably queued backlog: every waiter resolves.
        let reg_s = Arc::new(Registry::new());
        let engine_s = EnsembleEngine::new(pool.clone(), reg_s.clone(), roomy);
        let gate = Arc::new(AtomicBool::new(false));
        let blockers = park_workers(&pool, &gate);
        let queued: Vec<JobHandle> = (0..n_shut)
            .map(|i| {
                let req = JobRequest::new("doomed", Priority::Batch, wave(i, n_shut, nx, t_end));
                engine_s.submit(req).expect("pre-shutdown admission")
            })
            .collect();
        engine_s.shutdown();
        gate.store(true, Ordering::Release);
        for b in blockers {
            b.get();
        }
        let shut = wait_all(queued);
        assert!(
            shut.iter().all(|o| matches!(o, JobOutcome::Cancelled(_))),
            "shutdown must resolve queued jobs as cancelled, not hang them"
        );
        pooled.merge(&reg_s.snapshot());
        n_cancelled = token_cancelled + n_dead + n_shut;
        wall_e = t0.elapsed().as_secs_f64();
    }
    println!(
        "E  cancellation: {n_cancelled} jobs cancelled across token/deadline/shutdown paths, \
         no waiter hung, wall = {wall_e:.3}s"
    );
    wall_total += wall_e;
    pooled.merge(&reg_e.snapshot());
    sample_arm(5, &pooled, wall_e);
    table.row(&[
        "E:cancel".into(),
        format!("{wall_e:.3}"),
        (n_cancel + n_dead + n_shut).to_string(),
        format!("{n_cancelled} cancelled, 0 hangs"),
    ]);

    table.print();
    table.save_csv("f15_ensemble_service");

    if opts.profile {
        print_phase_table("f15_ensemble_service (all arms pooled)", &pooled);
    }
    let mut rep = RunReport::new("f15_ensemble_service");
    rep.config_str("preset", if opts.toy { "toy" } else { "full" })
        .config_str("problem", "1D density-wave/Sod floods, PPM+HLLC+RK3")
        .config_num("pool_threads", THREADS as f64)
        .config_num("nx_flood", nx as f64)
        .config_num("batch_jobs", n_batch as f64)
        .config_num("interactive_jobs", n_inter as f64)
        .config_num("scavenger_jobs", n_scav as f64)
        .config_num("sweep_size", n_sweep as f64)
        .config_num("hostile_jobs", n_mal as f64)
        .config_num("healthy_jobs", n_alice as f64)
        .config_num("fault_seed", seed as f64)
        .wall_time(wall_total)
        .parallelism(THREADS as f64)
        .series(&samples);
    rep.write(&pooled);
}
