//! Validate every `BENCH_*.json` report in the results directory against
//! the schema (see [`rhrsc_bench::validate_report`]). Exits non-zero if
//! any report is missing required fields, has non-positive phase totals,
//! or claims more phase time than `wall_time × parallelism` allows.
//!
//! Usage: `validate_reports [dir]` — defaults to the workspace
//! `results/` directory (or `RHRSC_RESULTS_DIR`).

use rhrsc_bench::{results_dir, validate_report, Json};

fn main() {
    let dir = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(results_dir);
    let mut checked = 0usize;
    let mut failed = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    entries.sort();
    for path in &entries {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let verdict = Json::parse(&text).and_then(|doc| validate_report(&doc));
        checked += 1;
        match verdict {
            Ok(()) => println!("ok    {}", path.display()),
            Err(msg) => {
                failed += 1;
                eprintln!("FAIL  {}: {msg}", path.display());
            }
        }
    }
    if checked == 0 {
        eprintln!("no BENCH_*.json reports found in {}", dir.display());
        std::process::exit(2);
    }
    println!("{checked} report(s) checked, {failed} failed");
    if failed > 0 {
        std::process::exit(1);
    }
}
