//! Validate every `BENCH_*.json` report and `TRACE_*.json` flight record
//! in the results directory against their schemas (see
//! [`rhrsc_bench::validate_report`] and [`rhrsc_bench::validate_trace`]).
//! Exits non-zero if any report is missing required fields, has
//! non-positive phase totals, claims more phase time than
//! `wall_time × parallelism` allows, or — for the fault-tolerance and
//! AMR benches — is missing the counters that prove the corresponding
//! machinery actually engaged. The multi-level checkpoint bench (f14)
//! must additionally report `sdc.undetected` exactly zero: one missed
//! flip is a correctness failure of the scrubbing subsystem. The
//! ensemble-service bench (f15) must show its `serve.*` admission,
//! cache, cancellation, and completion counters all engaged — and
//! `serve.isolation.breach` exactly zero (a clean job failing means a
//! tenant's faults leaked across the isolation boundary). Standardized physics benches must also
//! report a positive `zone_updates` cost figure; the scaling benches
//! (f4/f5) must report `zone_updates_per_sec`, and their `--toy` runs
//! are held to a throughput floor of 80% of the committed baseline so
//! hot-loop regressions fail CI. The a3 ablation must publish its
//! guarded-cadence observability values (refreshes and guard
//! violations per arm).
//!
//! Usage: `validate_reports [dir]` — defaults to the workspace
//! `results/` directory (or `RHRSC_RESULTS_DIR`).

use rhrsc_bench::{results_dir, validate_report, validate_telemetry_line, validate_trace, Json};

/// Bench ids that run with the flight recorder armed: when their
/// `BENCH_<id>.json` is present in the directory, the matching
/// `TRACE_<id>.json` must be too — a bench silently dropping its trace
/// output would otherwise go unnoticed until someone needs the spans.
const REQUIRED_TRACE_IDS: &[&str] = &["f7_overlap", "f10_fault_tolerance", "f11_rank_failure"];

/// Counters that must be present *and positive* for a given bench id —
/// their absence means the fault/liveness machinery silently never ran.
const REQUIRED_COUNTERS: &[(&str, &[&str])] = &[
    (
        "f10_fault_tolerance",
        &["dev.breaker.trips", "dev.breaker.host_steps"],
    ),
    (
        "f11_rank_failure",
        &[
            "comm.liveness.suspicions",
            "comm.liveness.confirmed_dead",
            "driver.shrinks",
        ],
    ),
    (
        "f12_amr",
        &["amr.regrids", "amr.updates.l1", "amr.reflux.corrections"],
    ),
    (
        "f13_distributed_amr",
        &[
            "amr.dist.halo_msgs",
            "amr.dist.reflux_msgs",
            "amr.dist.shrinks",
        ],
    ),
    (
        "f14_multilevel_ckp",
        &[
            "sdc.detected",
            "sdc.scrubs",
            "ckp.tier.local.restore",
            "ckp.tier.buddy.restore",
        ],
    ),
    (
        "f15_ensemble_service",
        &[
            "serve.admitted",
            "serve.admission.rejected",
            "serve.cache.hits",
            "serve.jobs.cancelled",
            "serve.jobs.completed",
        ],
    ),
];

/// Counters that must be present *and exactly zero* for a given bench id
/// — f14's SDC arm counts every injected flip the ABFT verify missed; a
/// single undetected flip is a correctness failure of the scrubbing
/// subsystem, and an absent counter means the accounting never ran.
const REQUIRED_ZERO_COUNTERS: &[(&str, &[&str])] = &[
    ("f14_multilevel_ckp", &["sdc.undetected"]),
    // A clean job failing inside the ensemble service means another
    // tenant's faults (or an engine bug) leaked across the isolation
    // boundary — one breach is a correctness failure of multi-tenancy.
    ("f15_ensemble_service", &["serve.isolation.breach"]),
];

/// Bench ids whose reports must state the rank count they ran on via an
/// explicit `parallelism` field matching the bench's published
/// configuration — the schema defaults a missing value to 1, which would
/// hide a distributed bench silently degrading to a single rank.
const REQUIRED_PARALLELISM: &[(&str, f64)] = &[
    ("f11_rank_failure", 4.0),
    ("f12_amr", 1.0),
    ("f13_distributed_amr", 4.0),
    ("f14_multilevel_ckp", 4.0),
    ("f15_ensemble_service", 4.0),
];

/// Bench ids whose reports must carry a positive `zone_updates` figure —
/// the standardized physics benches, where a missing update count means
/// the harness migration silently dropped the cost accounting.
const REQUIRED_ZONE_UPDATES: &[&str] = &[
    "f1_sod_profile",
    "f2_blast_waves",
    "f3_khi_growth",
    "t1_convergence",
    "t2_shock_accuracy",
    "f12_amr",
    "a5_smr_efficiency",
];

/// Bench ids whose reports must carry a positive `zone_updates_per_sec`
/// rate — the scaling benches, whose entire point is the hot-loop
/// throughput.
const REQUIRED_ZONE_RATE: &[&str] = &["f4_strong_scaling", "f5_weak_scaling"];

/// Committed toy-preset throughput baselines (zone updates/s). A report
/// whose `config.preset` is `"toy"` must reach at least
/// `TOY_FLOOR_FRACTION ×` its baseline — a PR that regresses the hot
/// loop by more than 20% fails the bench-profile job instead of merging
/// silently. Re-baseline (to the newly measured rate) whenever the hot
/// loop legitimately changes speed; full-preset runs are exempt because
/// their wall times are virtual-cluster makespans dominated by the
/// modeled network. Baselines are set conservatively (below the median
/// measured rate) because the virtual-cluster ranks time-share the host
/// and run-to-run noise on a loaded machine approaches ±30%.
const TOY_THROUGHPUT_BASELINES: &[(&str, f64)] = &[
    ("f4_strong_scaling", 1_700_000.0),
    ("f5_weak_scaling", 1_100_000.0),
];

/// Fraction of the committed toy baseline a report must reach.
const TOY_FLOOR_FRACTION: f64 = 0.8;

/// Report values (histogram summaries) that must be present for a given
/// bench id — a3's guarded-cadence arm must publish how many collective
/// refreshes each interval actually took and how often the coast guard
/// fired, or the ablation proves nothing about the guard.
const REQUIRED_VALUES: &[(&str, &[&str])] = &[(
    "a3_dt_refresh",
    &[
        "dt_refresh.makespan_us",
        "dt_refresh.allreduces",
        "dt.cadence.violations",
    ],
)];

/// Bench-specific check on top of the generic schema: required counters.
// Negated comparison form deliberately rejects NaN values.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
fn check_required_counters(doc: &Json) -> Result<(), String> {
    let Some(id) = doc.get("id").and_then(Json::as_str) else {
        return Ok(()); // schema validation already rejects this
    };
    if REQUIRED_ZONE_UPDATES.contains(&id) {
        let z = doc
            .get("zone_updates")
            .and_then(Json::as_f64)
            .ok_or(format!("`{id}` must report zone_updates"))?;
        if !(z > 0.0) {
            return Err(format!("zone_updates must be positive, got {z}"));
        }
    }
    if REQUIRED_ZONE_RATE.contains(&id) {
        let rate = doc
            .get("zone_updates_per_sec")
            .and_then(Json::as_f64)
            .ok_or(format!("`{id}` must report zone_updates_per_sec"))?;
        if !(rate > 0.0) {
            return Err(format!("zone_updates_per_sec must be positive, got {rate}"));
        }
        let preset = doc
            .get("config")
            .and_then(|c| c.get("preset"))
            .and_then(Json::as_str);
        if preset == Some("toy") {
            if let Some((_, baseline)) = TOY_THROUGHPUT_BASELINES.iter().find(|(k, _)| *k == id) {
                let floor = TOY_FLOOR_FRACTION * baseline;
                if !(rate >= floor) {
                    return Err(format!(
                        "`{id}` toy throughput {rate:.0} zu/s is below the \
                         regression floor {floor:.0} (80% of the committed \
                         baseline {baseline:.0})"
                    ));
                }
            }
        }
    }
    if let Some((_, required)) = REQUIRED_VALUES.iter().find(|(k, _)| *k == id) {
        let values = doc
            .get("values")
            .and_then(Json::as_arr)
            .ok_or(format!("`{id}` must report a values section"))?;
        for name in *required {
            if !values
                .iter()
                .any(|v| v.get("name").and_then(Json::as_str) == Some(name))
            {
                return Err(format!("required value `{name}` missing"));
            }
        }
    }
    if let Some((_, want)) = REQUIRED_PARALLELISM.iter().find(|(k, _)| *k == id) {
        let p = doc
            .get("parallelism")
            .and_then(Json::as_f64)
            .ok_or(format!("`{id}` must report its rank count as parallelism"))?;
        if p != *want {
            return Err(format!("`{id}` must report parallelism = {want}, got {p}"));
        }
    }
    if let Some((_, required)) = REQUIRED_ZERO_COUNTERS.iter().find(|(k, _)| *k == id) {
        let counters = doc
            .get("counters")
            .ok_or("missing key `counters`".to_string())?;
        for name in *required {
            let v = counters
                .get(name)
                .and_then(Json::as_f64)
                .ok_or(format!("required zero-counter `{name}` missing"))?;
            if v != 0.0 {
                return Err(format!("counter `{name}` must be exactly 0, got {v}"));
            }
        }
    }
    let Some((_, required)) = REQUIRED_COUNTERS.iter().find(|(k, _)| *k == id) else {
        return Ok(());
    };
    let counters = doc
        .get("counters")
        .ok_or("missing key `counters`".to_string())?;
    for name in *required {
        let v = counters
            .get(name)
            .and_then(Json::as_f64)
            .ok_or(format!("required counter `{name}` missing"))?;
        if !(v > 0.0) {
            return Err(format!(
                "required counter `{name}` must be positive, got {v}"
            ));
        }
    }
    Ok(())
}

fn main() {
    let dir = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(results_dir);
    let mut checked = 0usize;
    let mut failed = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", dir.display()))
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name().and_then(|n| n.to_str()).is_some_and(|n| {
                (n.starts_with("BENCH_") || n.starts_with("TRACE_")) && n.ends_with(".json")
            })
        })
        .collect();
    entries.sort();
    for path in &entries {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let is_trace = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("TRACE_"));
        let verdict = Json::parse(&text).and_then(|doc| {
            if is_trace {
                validate_trace(&doc)
            } else {
                validate_report(&doc)?;
                check_required_counters(&doc)
            }
        });
        checked += 1;
        match verdict {
            Ok(()) => println!("ok    {}", path.display()),
            Err(msg) => {
                failed += 1;
                eprintln!("FAIL  {}: {msg}", path.display());
            }
        }
    }
    // Traced benches must publish their flight record alongside the
    // bench report.
    for id in REQUIRED_TRACE_IDS {
        if dir.join(format!("BENCH_{id}.json")).exists() {
            let trace = dir.join(format!("TRACE_{id}.json"));
            checked += 1;
            if trace.exists() {
                println!("ok    {} (trace present)", trace.display());
            } else {
                failed += 1;
                eprintln!(
                    "FAIL  {}: traced bench `{id}` has a BENCH report but no flight record",
                    trace.display()
                );
            }
        }
    }
    // Telemetry JSONL streams: every line must parse and match the
    // sample/event schema.
    let mut jsonl: Vec<_> = std::fs::read_dir(&dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("TELEMETRY_") && n.ends_with(".jsonl"))
                })
                .collect()
        })
        .unwrap_or_default();
    jsonl.sort();
    for path in &jsonl {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let verdict = validate_telemetry_stream(&text);
        checked += 1;
        match verdict {
            Ok(lines) => println!("ok    {} ({lines} records)", path.display()),
            Err(msg) => {
                failed += 1;
                eprintln!("FAIL  {}: {msg}", path.display());
            }
        }
    }
    if checked == 0 {
        eprintln!(
            "no BENCH_*.json / TRACE_*.json files found in {}",
            dir.display()
        );
        std::process::exit(2);
    }
    println!("{checked} file(s) checked, {failed} failed");
    if failed > 0 {
        std::process::exit(1);
    }
}

/// Validate a whole telemetry JSONL stream: non-empty, every line a
/// valid sample/event record, at least one sample.
fn validate_telemetry_stream(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    let mut lines = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        validate_telemetry_line(&doc).map_err(|e| format!("line {}: {e}", i + 1))?;
        if doc.get("type").and_then(Json::as_str) == Some("sample") {
            samples += 1;
        }
        lines += 1;
    }
    if samples == 0 {
        return Err("stream contains no sample records".to_string());
    }
    Ok(lines)
}
