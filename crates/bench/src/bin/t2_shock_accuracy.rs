//! T2 — Shock-capturing accuracy vs the exact Riemann solution.
//!
//! Runs Sod and the two Martí–Müller blast waves at N = 400 for every
//! (Riemann solver × reconstruction) combination and reports L1(ρ) vs the
//! exact solution. `--toy` drops to N = 100.
//!
//! Expected shape: errors ordered HLLC ≤ HLL ≤ Rusanov at fixed
//! reconstruction (contact resolution), and PPM/WENO5 ≤ PLM ≤ PC at fixed
//! solver; blast2 (strongest shock) has the largest absolute errors.

use rhrsc_bench::{print_phase_table, sci, BenchOpts, RunReport, Table};
use rhrsc_grid::PatchGeom;
use rhrsc_runtime::Registry;
use rhrsc_solver::diag::l1_density_error;
use rhrsc_solver::problems::Problem;
use rhrsc_solver::scheme::init_cons;
use rhrsc_solver::{PatchSolver, RkOrder, Scheme};
use rhrsc_srhd::recon::{Limiter, Recon};
use rhrsc_srhd::riemann::RiemannSolver;
use std::time::Instant;

fn main() {
    let opts = BenchOpts::from_args();
    let n = if opts.toy { 100 } else { 400 };
    println!("# T2: shock-tube L1(rho) error vs exact solution, N = {n}");
    let problems = [
        Problem::sod(),
        Problem::blast_wave_1(),
        Problem::blast_wave_2(),
    ];
    let recons = [
        Recon::Pc,
        Recon::Plm(Limiter::Mc),
        Recon::Ppm,
        Recon::Ceno3,
        Recon::Mp5,
        Recon::Weno5,
    ];
    let reg = Registry::new();
    let bench_t0 = Instant::now();
    let mut zone_updates = 0u64;

    let mut table = Table::new(&["problem", "riemann", "recon", "L1(rho)"]);
    for prob in &problems {
        for rs in RiemannSolver::ALL {
            for recon in recons {
                let scheme = Scheme {
                    recon,
                    riemann: rs,
                    ..Scheme::default_with_gamma(5.0 / 3.0)
                };
                let geom = PatchGeom::line(n, 0.0, 1.0, scheme.required_ghosts());
                let mut u = init_cons(geom, &scheme.eos, &|x| (prob.ic)(x));
                let mut solver = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk3, geom);
                let t0 = Instant::now();
                solver
                    .advance_to(&mut u, 0.0, prob.t_end, 0.4, None)
                    .unwrap_or_else(|e| {
                        panic!("{} {} {}: {e}", prob.name, rs.name(), recon.name())
                    });
                reg.histogram("phase.advance")
                    .record(t0.elapsed().as_nanos() as u64);
                zone_updates += solver.stats().zone_updates;
                let exact = prob.exact.clone().unwrap();
                let (l1, _) = l1_density_error(&scheme, &u, &exact, prob.t_end).unwrap();
                table.row(&[
                    prob.name.clone(),
                    rs.name().to_string(),
                    recon.name().to_string(),
                    sci(l1),
                ]);
            }
        }
    }
    table.print();
    table.save_csv("t2_shock_accuracy");
    let snap = reg.snapshot();
    if opts.profile {
        print_phase_table("t2_shock_accuracy", &snap);
    }
    RunReport::new("t2_shock_accuracy")
        .config_str("problem", "sod + blast1 + blast2, all riemann x recon")
        .config_num("n", n as f64)
        .config_num(
            "configs",
            (problems.len() * RiemannSolver::ALL.len() * recons.len()) as f64,
        )
        .wall_time(bench_t0.elapsed().as_secs_f64())
        .parallelism(1.0)
        .zone_updates(zone_updates as f64)
        .write(&snap);
}
