//! Benchmark-harness utilities: aligned table printing and CSV output.
//!
//! Every reconstructed table/figure (see DESIGN.md) has a regeneration
//! binary under `src/bin/`; they print the rows the evaluation reports and
//! mirror them to `results/<id>.csv` for plotting.

use std::io::Write;
use std::path::{Path, PathBuf};

pub mod compare;
pub mod json;
pub mod report;

pub use compare::{compare_dirs, compare_docs, CompareRun};
pub use json::Json;
pub use report::{
    print_phase_table, validate_report, validate_series, validate_telemetry_line, validate_trace,
    BenchOpts, RunReport,
};

/// The `results/` directory at the workspace root (created on demand).
///
/// `RHRSC_RESULTS_DIR` overrides the location outright (CI redirects
/// reports this way). Otherwise walk up from the current dir to the
/// Cargo workspace root; if none is found, fall back to the current
/// directory *with a warning* — a silent fallback used to scatter
/// CSV/JSON output into arbitrary cwds.
pub fn results_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("RHRSC_RESULTS_DIR") {
        let out = PathBuf::from(dir);
        ensure_dir(&out);
        return out;
    }
    let mut dir = std::env::current_dir().expect("no cwd");
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").exists() {
            break;
        }
        if !dir.pop() {
            dir = std::env::current_dir().unwrap();
            eprintln!(
                "warning: no Cargo workspace root above {}; writing results to {}",
                dir.display(),
                dir.join("results").display()
            );
            break;
        }
    }
    let out = dir.join("results");
    ensure_dir(&out);
    out
}

/// Best-effort directory creation: warn and continue on failure instead
/// of panicking, so a bench on a read-only filesystem still runs to
/// completion — the writers then skip their output with their own
/// warning.
fn ensure_dir(dir: &Path) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
    }
}

/// A simple experiment table: prints aligned to stdout and saves as CSV.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column-count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Print the table aligned to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let cols: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("  {}", cols.join("  "));
        };
        line(&self.headers);
        println!(
            "  {}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            line(row);
        }
    }

    /// Save as `results/<name>.csv`.
    pub fn save_csv(&self, name: &str) {
        self.save_csv_to(&results_dir(), name);
    }

    /// Save as `<dir>/<name>.csv`. Creates missing parent directories;
    /// on an unwritable destination it warns and skips rather than
    /// panicking (the table was already printed to stdout).
    pub fn save_csv_to(&self, dir: &Path, name: &str) {
        let path = dir.join(format!("{name}.csv"));
        ensure_dir(dir);
        let file = match std::fs::File::create(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("warning: cannot write {}: {e}; skipping", path.display());
                return;
            }
        };
        let mut f = std::io::BufWriter::new(file);
        let mut ok = writeln!(f, "{}", self.headers.join(",")).is_ok();
        for row in &self.rows {
            ok &= writeln!(f, "{}", row.join(",")).is_ok();
        }
        if ok {
            println!("  -> wrote {}", path.display());
        } else {
            eprintln!(
                "warning: short write to {}; csv may be incomplete",
                path.display()
            );
        }
    }
}

/// Format a float in short scientific notation.
pub fn sci(x: f64) -> String {
    format!("{x:.3e}")
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rejects_bad_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.row(&["only-one".into()]);
        }))
        .is_err());
    }

    #[test]
    fn results_dir_exists() {
        assert!(results_dir().is_dir());
    }

    #[test]
    fn formatting() {
        assert_eq!(sci(0.00123), "1.230e-3");
        assert_eq!(f3(1.23456), "1.235");
    }
}
