//! The bench-regression sentinel: diff current `BENCH_<id>.json` run
//! reports against committed baselines with per-metric tolerances.
//!
//! The sentinel compares only reports whose `config` objects match
//! bit-for-bit — a baseline recorded at the full preset says nothing
//! about a `--toy` run, so mismatched configs are *skipped with a note*
//! rather than judged. For matching configs, each [`RULES`] entry
//! extracts one metric from both reports and applies a direction-aware
//! relative tolerance:
//!
//! * [`Direction::Exact`] — deterministic quantities (`zone_updates`)
//!   must agree to rounding noise; any drift means the run did
//!   different work than the baseline.
//! * [`Direction::LowerIsWorse`] — throughput may regress at most
//!   `tolerance` relative (generous, CI machines vary); improvements
//!   always pass.
//! * [`Direction::HigherIsWorse`] — correctness counters (undetected
//!   SDC) may not rise at all at `tolerance = 0`.
//!
//! A baseline report with no matching current report is itself a
//! regression: a bench silently dropping out of the suite must fail CI
//! loudly, not rot.

use crate::json::Json;
use crate::Table;
use std::path::Path;

/// How a metric's deviation from baseline is judged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Must match to relative rounding noise (deterministic metric).
    Exact,
    /// Dropping below `baseline × (1 − tol)` is a regression.
    LowerIsWorse,
    /// Rising above `baseline × (1 + tol)` is a regression.
    HigherIsWorse,
}

/// One sentinel rule: a metric path plus its judgement.
#[derive(Clone, Copy, Debug)]
pub struct Rule {
    /// Metric path: a top-level numeric key, or `counters.<name>`.
    pub metric: &'static str,
    /// Judgement direction.
    pub direction: Direction,
    /// Relative tolerance (ignored for `Exact`, which uses 1e-9).
    pub tolerance: f64,
}

/// The per-metric tolerance table. Rules whose metric is absent from
/// the *baseline* are skipped (not every bench reports every metric);
/// a metric present in the baseline but missing from the current
/// report fails.
pub const RULES: &[Rule] = &[
    // Zone-update counts are fully deterministic for a fixed config —
    // any change means the run did different work.
    Rule {
        metric: "zone_updates",
        direction: Direction::Exact,
        tolerance: 1e-9,
    },
    // Throughput gate: generous, CI machines vary widely, but a 2×
    // slowdown is a real regression on any machine.
    Rule {
        metric: "zone_updates_per_sec",
        direction: Direction::LowerIsWorse,
        tolerance: 0.5,
    },
    // Undetected silent data corruption must never rise above the
    // baseline (which commits it at zero).
    Rule {
        metric: "counters.sdc.undetected",
        direction: Direction::HigherIsWorse,
        tolerance: 0.0,
    },
];

/// The verdict for one (report, metric) pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance.
    Pass,
    /// Outside tolerance — regression.
    Fail,
    /// Metric present in baseline but absent in current — regression.
    MissingMetric,
}

/// One row of the sentinel's output.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Report id (e.g. `f4_strong_scaling`).
    pub id: String,
    /// Metric path.
    pub metric: &'static str,
    /// Baseline value.
    pub baseline: f64,
    /// Current value (0 when missing).
    pub current: f64,
    /// The verdict.
    pub verdict: Verdict,
}

impl Outcome {
    /// Whether this row is a regression.
    pub fn is_regression(&self) -> bool {
        self.verdict != Verdict::Pass
    }
}

/// Look up a metric path in a report: a top-level numeric key, or
/// `counters.<name>` (counter names themselves contain dots, so only
/// the first segment selects the table).
pub fn metric_value(doc: &Json, path: &str) -> Option<f64> {
    match path.split_once('.') {
        Some(("counters", name)) => doc.get("counters")?.get(name)?.as_f64(),
        _ => doc.get(path)?.as_f64(),
    }
}

fn judge(rule: &Rule, baseline: f64, current: f64) -> Verdict {
    let pass = match rule.direction {
        Direction::Exact => (current - baseline).abs() <= 1e-9 * baseline.abs().max(1.0),
        Direction::LowerIsWorse => current >= baseline * (1.0 - rule.tolerance),
        Direction::HigherIsWorse => current <= baseline * (1.0 + rule.tolerance),
    };
    if pass {
        Verdict::Pass
    } else {
        Verdict::Fail
    }
}

/// Compare one baseline report against its current counterpart.
/// Returns `None` (skip) when the `config` objects differ — the runs
/// are not comparable. `current = None` means the bench is missing
/// from the current results entirely; every baseline rule then fails.
pub fn compare_docs(baseline: &Json, current: Option<&Json>) -> Option<Vec<Outcome>> {
    let id = baseline
        .get("id")
        .and_then(Json::as_str)
        .unwrap_or("?")
        .to_string();
    if let Some(cur) = current {
        if baseline.get("config") != cur.get("config") {
            return None;
        }
    }
    let mut out = Vec::new();
    for rule in RULES {
        let Some(base) = metric_value(baseline, rule.metric) else {
            continue; // baseline doesn't track this metric
        };
        let (current_v, verdict) = match current.and_then(|c| metric_value(c, rule.metric)) {
            Some(cur) => (cur, judge(rule, base, cur)),
            None => (0.0, Verdict::MissingMetric),
        };
        out.push(Outcome {
            id: id.clone(),
            metric: rule.metric,
            baseline: base,
            current: current_v,
            verdict,
        });
    }
    Some(out)
}

/// The result of a directory-level comparison run.
#[derive(Debug, Default)]
pub struct CompareRun {
    /// Per-metric outcomes across all compared reports.
    pub outcomes: Vec<Outcome>,
    /// Reports skipped because their configs differ (id, note).
    pub skipped: Vec<String>,
    /// Parse/read errors encountered (best-effort: one bad file does
    /// not hide regressions in the others).
    pub errors: Vec<String>,
}

impl CompareRun {
    /// Total regressions (failed or missing metrics).
    pub fn regressions(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_regression()).count()
    }

    /// Print the regression table and skip notes.
    pub fn print(&self) {
        let mut t = Table::new(&["report", "metric", "baseline", "current", "verdict"]);
        for o in &self.outcomes {
            t.row(&[
                o.id.clone(),
                o.metric.to_string(),
                format!("{:.6}", o.baseline),
                format!("{:.6}", o.current),
                match o.verdict {
                    Verdict::Pass => "ok".to_string(),
                    Verdict::Fail => "REGRESSION".to_string(),
                    Verdict::MissingMetric => "MISSING".to_string(),
                },
            ]);
        }
        t.print();
        for s in &self.skipped {
            println!("  skipped (config mismatch): {s}");
        }
        for e in &self.errors {
            eprintln!("  error: {e}");
        }
    }
}

fn read_report(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))
}

/// Compare every `BENCH_*.json` under `baseline_dir` against the
/// same-named report under `current_dir`.
pub fn compare_dirs(baseline_dir: &Path, current_dir: &Path) -> CompareRun {
    let mut run = CompareRun::default();
    let entries = match std::fs::read_dir(baseline_dir) {
        Ok(e) => e,
        Err(e) => {
            run.errors
                .push(format!("cannot read {}: {e}", baseline_dir.display()));
            return run;
        }
    };
    let mut names: Vec<String> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    for name in names {
        let baseline = match read_report(&baseline_dir.join(&name)) {
            Ok(doc) => doc,
            Err(e) => {
                run.errors.push(e);
                continue;
            }
        };
        let current_path = current_dir.join(&name);
        let current = if current_path.exists() {
            match read_report(&current_path) {
                Ok(doc) => Some(doc),
                Err(e) => {
                    run.errors.push(e);
                    continue;
                }
            }
        } else {
            None
        };
        match compare_docs(&baseline, current.as_ref()) {
            Some(outcomes) => run.outcomes.extend(outcomes),
            None => run.skipped.push(name),
        }
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::obj;

    fn report(id: &str, zu: f64, rate: f64, sdc: f64, preset: &str) -> Json {
        obj(vec![
            ("id", Json::Str(id.to_string())),
            (
                "config",
                obj(vec![("preset", Json::Str(preset.to_string()))]),
            ),
            ("zone_updates", Json::Num(zu)),
            ("zone_updates_per_sec", Json::Num(rate)),
            (
                "counters",
                Json::Obj(vec![("sdc.undetected".to_string(), Json::Num(sdc))]),
            ),
        ])
    }

    #[test]
    fn unchanged_report_passes() {
        let base = report("f4", 6553600.0, 4.0e6, 0.0, "toy");
        let outcomes = compare_docs(&base, Some(&base.clone())).unwrap();
        assert_eq!(outcomes.len(), RULES.len());
        assert!(outcomes.iter().all(|o| o.verdict == Verdict::Pass));
    }

    #[test]
    fn degraded_metrics_fail_per_direction() {
        let base = report("f4", 6553600.0, 4.0e6, 0.0, "toy");
        // Throughput halved-and-then-some → fails the 0.5 gate.
        let slow = report("f4", 6553600.0, 1.9e6, 0.0, "toy");
        let o = compare_docs(&base, Some(&slow)).unwrap();
        assert!(o
            .iter()
            .any(|o| o.metric == "zone_updates_per_sec" && o.verdict == Verdict::Fail));
        // A faster run passes.
        let fast = report("f4", 6553600.0, 9.0e6, 0.0, "toy");
        let o = compare_docs(&base, Some(&fast)).unwrap();
        assert!(o.iter().all(|o| o.verdict == Verdict::Pass));
        // Different work done → exact metric fails.
        let drift = report("f4", 6553601.0, 4.0e6, 0.0, "toy");
        let o = compare_docs(&base, Some(&drift)).unwrap();
        assert!(o
            .iter()
            .any(|o| o.metric == "zone_updates" && o.verdict == Verdict::Fail));
        // Any undetected SDC → fails at zero tolerance.
        let sdc = report("f4", 6553600.0, 4.0e6, 1.0, "toy");
        let o = compare_docs(&base, Some(&sdc)).unwrap();
        assert!(o
            .iter()
            .any(|o| o.metric == "counters.sdc.undetected" && o.verdict == Verdict::Fail));
    }

    #[test]
    fn config_mismatch_skips_not_judges() {
        let base = report("f4", 6553600.0, 4.0e6, 0.0, "full");
        let toy = report("f4", 102400.0, 1.0e6, 0.0, "toy");
        assert!(compare_docs(&base, Some(&toy)).is_none());
    }

    #[test]
    fn missing_current_report_is_a_regression() {
        let base = report("f4", 6553600.0, 4.0e6, 0.0, "toy");
        let o = compare_docs(&base, None).unwrap();
        assert!(!o.is_empty());
        assert!(o.iter().all(|o| o.verdict == Verdict::MissingMetric));
        assert!(o.iter().all(Outcome::is_regression));
    }

    #[test]
    fn compare_dirs_end_to_end() {
        let tmp = std::env::temp_dir().join("rhrsc_compare_test");
        let _ = std::fs::remove_dir_all(&tmp);
        let basedir = tmp.join("baseline");
        let curdir = tmp.join("current");
        std::fs::create_dir_all(&basedir).unwrap();
        std::fs::create_dir_all(&curdir).unwrap();
        let base = report("f4", 100.0, 4.0e6, 0.0, "toy");
        std::fs::write(basedir.join("BENCH_f4.json"), base.pretty()).unwrap();
        std::fs::write(
            curdir.join("BENCH_f4.json"),
            report("f4", 100.0, 3.9e6, 0.0, "toy").pretty(),
        )
        .unwrap();
        let run = compare_dirs(&basedir, &curdir);
        assert_eq!(run.regressions(), 0);
        run.print();

        // Remove the current report: every rule becomes a regression.
        std::fs::remove_file(curdir.join("BENCH_f4.json")).unwrap();
        let run = compare_dirs(&basedir, &curdir);
        assert!(run.regressions() > 0);
        let _ = std::fs::remove_dir_all(&tmp);
    }
}
