//! Structured BENCH run reports and the `--profile` phase table.
//!
//! Every headline experiment binary (F4/F5/F7/F9/T3) emits a
//! machine-readable `results/BENCH_<id>.json` run report alongside its
//! CSV — the benchmark trajectory later performance PRs are judged
//! against. Schema (version 1):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "id": "f7_overlap",
//!   "build": {"package_version": "...", "debug": false,
//!             "os": "linux", "arch": "x86_64"},
//!   "timestamp_unix": 1754438400,
//!   "config": {"...": "bench-specific key/values"},
//!   "wall_time_s": 1.25,
//!   "parallelism": 4,
//!   "zone_updates": 2621440,          // optional
//!   "zone_updates_per_sec": 2.1e6,    // derived, optional
//!   "phases":   [{"name": "phase.halo.wait", "total_s": 0.5,
//!                 "count": 240, "mean_s": 0.002,
//!                 "p50_s": 0.0019, "p99_s": 0.004}],
//!   "counters": {"comm.msgs.halo": 960},
//!   "values":   [{"name": "c2p.newton_iters", "count": 655360,
//!                 "sum": 2621440, "mean": 4.0}],
//!   "series":   {"fields": ["step", "time", "t_ns", "..."],
//!                "samples": [[1, 0.001, 12345, 0.0]]}  // optional
//! }
//! ```
//!
//! `phases` holds every duration histogram (names prefixed `phase.` for
//! disjoint top-level step phases, `sub.` for nested sections — see
//! DESIGN.md "Observability"); `values` holds the remaining, unit-less
//! histograms. Totals are summed across ranks, so a consistency check
//! must compare against `wall_time_s × parallelism`, not wall time
//! alone.

use crate::json::{obj, Json};
use crate::{f3, results_dir, Table};
use rhrsc_runtime::metrics::Snapshot;
use std::path::{Path, PathBuf};

/// Command-line options shared by the bench binaries.
#[derive(Clone, Debug, Default)]
pub struct BenchOpts {
    /// Print the phase-breakdown table (`--profile`).
    pub profile: bool,
    /// Shrink the problem for CI smoke runs (`--toy`).
    pub toy: bool,
    /// Write a Chrome/Perfetto `trace.json` of the instrumented run
    /// (`--trace-out <path>`).
    pub trace_out: Option<PathBuf>,
    /// Stream telemetry samples/events as JSONL to this path
    /// (`--telemetry-out <path>`).
    pub telemetry_out: Option<PathBuf>,
    /// Atomically rewrite an OpenMetrics textfile on the telemetry
    /// cadence (`--metrics-textfile <path>`, node_exporter
    /// textfile-collector compatible).
    pub metrics_textfile: Option<PathBuf>,
}

impl BenchOpts {
    /// Parse `--profile` / `--toy` / `--trace-out <path>` /
    /// `--telemetry-out <path>` / `--metrics-textfile <path>` from
    /// `std::env::args`, warning on anything else.
    pub fn from_args() -> Self {
        // Path-valued flags accept both `--flag path` and `--flag=path`.
        fn next_path(args: &mut impl Iterator<Item = String>, flag: &str) -> Option<PathBuf> {
            let p = args.next().map(PathBuf::from);
            if p.is_none() {
                eprintln!("warning: {flag} requires a path argument");
            }
            p
        }
        let mut o = BenchOpts::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--profile" => o.profile = true,
                "--toy" => o.toy = true,
                "--trace-out" => o.trace_out = next_path(&mut args, "--trace-out"),
                "--telemetry-out" => o.telemetry_out = next_path(&mut args, "--telemetry-out"),
                "--metrics-textfile" => {
                    o.metrics_textfile = next_path(&mut args, "--metrics-textfile")
                }
                other => {
                    if let Some(p) = other.strip_prefix("--trace-out=") {
                        o.trace_out = Some(PathBuf::from(p));
                    } else if let Some(p) = other.strip_prefix("--telemetry-out=") {
                        o.telemetry_out = Some(PathBuf::from(p));
                    } else if let Some(p) = other.strip_prefix("--metrics-textfile=") {
                        o.metrics_textfile = Some(PathBuf::from(p));
                    } else {
                        eprintln!("warning: ignoring unknown argument `{other}`");
                    }
                }
            }
        }
        o
    }

    /// The trace destination: `--trace-out` if given, else the
    /// `RHRSC_TRACE` environment variable.
    pub fn trace_path(&self) -> Option<PathBuf> {
        self.trace_out
            .clone()
            .or_else(|| std::env::var_os("RHRSC_TRACE").map(PathBuf::from))
    }

    /// Telemetry configuration, when armed: either sink flag arms it at
    /// the default cadence, and `RHRSC_TELEMETRY_INTERVAL` arms it
    /// and/or overrides the cadence. `None` = telemetry detached.
    pub fn telemetry_config(&self) -> Option<rhrsc_runtime::TelemetryConfig> {
        let env = rhrsc_runtime::TelemetryConfig::from_env();
        if env.is_some() {
            return env;
        }
        (self.telemetry_out.is_some() || self.metrics_textfile.is_some())
            .then(rhrsc_runtime::TelemetryConfig::default)
    }
}

/// Builder for a `BENCH_<id>.json` run report.
pub struct RunReport {
    id: String,
    config: Vec<(String, Json)>,
    wall_time_s: f64,
    parallelism: f64,
    zone_updates: Option<f64>,
    series: Vec<rhrsc_runtime::SeriesSample>,
}

impl RunReport {
    /// Start a report for experiment `id` (e.g. `f4_strong_scaling`).
    pub fn new(id: &str) -> Self {
        RunReport {
            id: id.to_string(),
            config: Vec::new(),
            wall_time_s: 0.0,
            parallelism: 1.0,
            zone_updates: None,
            series: Vec::new(),
        }
    }

    /// Record a bench-specific config entry (string value).
    pub fn config_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.config.push((key.to_string(), Json::Str(value.into())));
        self
    }

    /// Record a bench-specific config entry (numeric value).
    pub fn config_num(&mut self, key: &str, value: f64) -> &mut Self {
        self.config.push((key.to_string(), Json::Num(value)));
        self
    }

    /// Total wall-clock time of the measured section, seconds.
    pub fn wall_time(&mut self, secs: f64) -> &mut Self {
        self.wall_time_s = secs;
        self
    }

    /// Number of concurrent workers contributing to the phase totals
    /// (simulated ranks): phase sums may legitimately reach
    /// `wall_time × parallelism`.
    pub fn parallelism(&mut self, p: f64) -> &mut Self {
        self.parallelism = p;
        self
    }

    /// Total zone updates performed (cells × RK stages × steps); derives
    /// `zone_updates_per_sec`.
    pub fn zone_updates(&mut self, z: f64) -> &mut Self {
        self.zone_updates = Some(z);
        self
    }

    /// Attach the telemetry time series (the hub's retained samples):
    /// the report gains a `series` section with the field schema and one
    /// numeric row per sample (`[step, time, t_ns, fields...]`).
    pub fn series(&mut self, samples: &[rhrsc_runtime::SeriesSample]) -> &mut Self {
        self.series = samples.to_vec();
        self
    }

    /// Render the report document from a metrics snapshot.
    pub fn to_json(&self, snap: &Snapshot) -> Json {
        let mut phases = Vec::new();
        let mut values = Vec::new();
        for (name, h) in &snap.histograms {
            if name.starts_with("phase.") || name.starts_with("sub.") {
                let total_s = h.sum as f64 * 1e-9;
                phases.push(obj(vec![
                    ("name", Json::Str(name.clone())),
                    ("total_s", Json::Num(total_s)),
                    ("count", Json::Num(h.count as f64)),
                    (
                        "mean_s",
                        Json::Num(if h.count > 0 {
                            total_s / h.count as f64
                        } else {
                            0.0
                        }),
                    ),
                    ("p50_s", Json::Num(h.quantile(0.5) * 1e-9)),
                    ("p99_s", Json::Num(h.quantile(0.99) * 1e-9)),
                ]));
            } else {
                values.push(obj(vec![
                    ("name", Json::Str(name.clone())),
                    ("count", Json::Num(h.count as f64)),
                    ("sum", Json::Num(h.sum as f64)),
                    ("mean", Json::Num(h.mean())),
                ]));
            }
        }
        let counters = Json::Obj(
            snap.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                .collect(),
        );
        let timestamp = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mut members = vec![
            ("schema_version", Json::Num(1.0)),
            ("id", Json::Str(self.id.clone())),
            (
                "build",
                obj(vec![
                    (
                        "package_version",
                        Json::Str(env!("CARGO_PKG_VERSION").to_string()),
                    ),
                    ("debug", Json::Bool(cfg!(debug_assertions))),
                    ("os", Json::Str(std::env::consts::OS.to_string())),
                    ("arch", Json::Str(std::env::consts::ARCH.to_string())),
                ]),
            ),
            ("timestamp_unix", Json::Num(timestamp as f64)),
            ("config", Json::Obj(self.config.clone())),
            ("wall_time_s", Json::Num(self.wall_time_s)),
            ("parallelism", Json::Num(self.parallelism)),
        ];
        if let Some(z) = self.zone_updates {
            members.push(("zone_updates", Json::Num(z)));
            if self.wall_time_s > 0.0 {
                members.push(("zone_updates_per_sec", Json::Num(z / self.wall_time_s)));
            }
        }
        members.push(("phases", Json::Arr(phases)));
        members.push(("counters", counters));
        members.push(("values", Json::Arr(values)));
        if !self.series.is_empty() {
            let mut fields = vec![
                Json::Str("step".into()),
                Json::Str("time".into()),
                Json::Str("t_ns".into()),
            ];
            fields.extend(
                rhrsc_runtime::telemetry::SERIES_FIELDS
                    .iter()
                    .map(|f| Json::Str(f.name.to_string())),
            );
            let samples = self
                .series
                .iter()
                .map(|s| Json::Arr(s.pack().into_iter().map(Json::Num).collect()))
                .collect();
            members.push((
                "series",
                obj(vec![
                    ("fields", Json::Arr(fields)),
                    ("samples", Json::Arr(samples)),
                ]),
            ));
        }
        obj(members)
    }

    /// Write `BENCH_<id>.json` into `dir`, returning the path. Missing
    /// parent directories are created; an unwritable destination warns
    /// and skips instead of panicking (the report content was already
    /// rendered, and a bench on a read-only filesystem should still run
    /// to completion).
    pub fn write_to(&self, dir: &Path, snap: &Snapshot) -> PathBuf {
        let path = dir.join(format!("BENCH_{}.json", self.id));
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
        }
        if let Err(e) = std::fs::write(&path, self.to_json(snap).pretty()) {
            eprintln!(
                "warning: cannot write BENCH report {}: {e}; skipping",
                path.display()
            );
        }
        path
    }

    /// Write `results/BENCH_<id>.json`, returning the path.
    pub fn write(&self, snap: &Snapshot) -> PathBuf {
        let path = self.write_to(&results_dir(), snap);
        println!("  -> wrote {}", path.display());
        path
    }
}

/// Validate a parsed `BENCH_*.json` document against schema version 1.
/// Returns a description of the first violation.
// Negated comparison forms deliberately reject NaN values.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
pub fn validate_report(doc: &Json) -> Result<(), String> {
    let need = |key: &str| doc.get(key).ok_or(format!("missing key `{key}`"));
    if need("schema_version")?.as_f64() != Some(1.0) {
        return Err("schema_version != 1".to_string());
    }
    if need("id")?.as_str().is_none_or(str::is_empty) {
        return Err("id must be a non-empty string".to_string());
    }
    let build = need("build")?;
    for key in ["package_version", "os", "arch"] {
        if build.get(key).and_then(Json::as_str).is_none() {
            return Err(format!("build.{key} must be a string"));
        }
    }
    need("config")?
        .as_obj()
        .ok_or("config must be an object".to_string())?;
    let wall = need("wall_time_s")?
        .as_f64()
        .ok_or("wall_time_s must be a number".to_string())?;
    if !(wall > 0.0) {
        return Err(format!("wall_time_s must be positive, got {wall}"));
    }
    let parallelism = need("parallelism")?.as_f64().unwrap_or(1.0).max(1.0);
    let phases = need("phases")?
        .as_arr()
        .ok_or("phases must be an array".to_string())?;
    if phases.is_empty() {
        return Err("phases must be non-empty".to_string());
    }
    let mut phase_sum = 0.0;
    for p in phases {
        let name = p
            .get("name")
            .and_then(Json::as_str)
            .ok_or("phase missing name".to_string())?;
        let total = p
            .get("total_s")
            .and_then(Json::as_f64)
            .ok_or(format!("phase `{name}` missing total_s"))?;
        if total < 0.0 {
            return Err(format!("phase `{name}` has negative total_s"));
        }
        if p.get("count").and_then(Json::as_f64).is_none() {
            return Err(format!("phase `{name}` missing count"));
        }
        // `sub.*` sections nest inside `phase.*` sections; only count the
        // disjoint top-level phases toward the wall-time consistency sum.
        if name.starts_with("phase.") {
            phase_sum += total;
        }
    }
    if !(phase_sum > 0.0) {
        return Err("sum of phase totals must be positive".to_string());
    }
    let budget = wall * parallelism * 1.1;
    if phase_sum > budget {
        return Err(format!(
            "phase totals ({phase_sum:.3} s) exceed wall_time × parallelism ({budget:.3} s)"
        ));
    }
    if let Some(rate) = doc.get("zone_updates_per_sec").and_then(Json::as_f64) {
        if !(rate > 0.0) {
            return Err(format!("zone_updates_per_sec must be positive, got {rate}"));
        }
    }
    if let Some(series) = doc.get("series") {
        validate_series(series)?;
    }
    Ok(())
}

/// Validate a report's `series` section (the telemetry time series):
/// a non-empty string field schema matching the runtime's
/// [`SERIES_FIELDS`](rhrsc_runtime::telemetry::SERIES_FIELDS) plus the
/// `[step, time, t_ns]` header, and numeric rows of matching width with
/// strictly increasing step numbers.
pub fn validate_series(series: &Json) -> Result<(), String> {
    let fields = series
        .get("fields")
        .and_then(Json::as_arr)
        .ok_or("series.fields must be an array".to_string())?;
    let names: Vec<&str> = fields.iter().filter_map(Json::as_str).collect();
    if names.len() != fields.len() {
        return Err("series.fields must be strings".to_string());
    }
    let expected: Vec<&str> = ["step", "time", "t_ns"]
        .into_iter()
        .chain(
            rhrsc_runtime::telemetry::SERIES_FIELDS
                .iter()
                .map(|f| f.name),
        )
        .collect();
    if names != expected {
        return Err(format!(
            "series.fields does not match the telemetry schema (got {} fields, want {})",
            names.len(),
            expected.len()
        ));
    }
    let samples = series
        .get("samples")
        .and_then(Json::as_arr)
        .ok_or("series.samples must be an array".to_string())?;
    if samples.is_empty() {
        return Err("series.samples must be non-empty".to_string());
    }
    let mut prev_step = -1.0;
    for (i, row) in samples.iter().enumerate() {
        let row = row
            .as_arr()
            .ok_or(format!("series sample {i} must be an array"))?;
        if row.len() != expected.len() {
            return Err(format!(
                "series sample {i} has {} values, want {}",
                row.len(),
                expected.len()
            ));
        }
        let mut nums = row.iter().map(Json::as_f64);
        if nums.any(|v| v.is_none_or(|v| !v.is_finite())) {
            return Err(format!("series sample {i} has a non-finite value"));
        }
        let step = row[0].as_f64().expect("checked numeric above");
        if step <= prev_step {
            return Err(format!(
                "series sample {i} step {step} is not increasing (previous {prev_step})"
            ));
        }
        prev_step = step;
    }
    Ok(())
}

/// Validate one line of a telemetry JSONL stream (as written by
/// `rhrsc_io::telemetry::FileSinks`): a `sample` record with trace ids
/// and the full field schema, or an `event` record with a kind.
pub fn validate_telemetry_line(doc: &Json) -> Result<(), String> {
    let ty = doc
        .get("type")
        .and_then(Json::as_str)
        .ok_or("record missing `type`".to_string())?;
    for key in ["pid", "step", "t_ns"] {
        if doc.get(key).and_then(Json::as_f64).is_none() {
            return Err(format!("{ty} record missing numeric `{key}`"));
        }
    }
    match ty {
        "sample" => {
            if doc.get("time").and_then(Json::as_f64).is_none() {
                return Err("sample record missing numeric `time`".to_string());
            }
            let fields = doc
                .get("fields")
                .and_then(Json::as_obj)
                .ok_or("sample record missing `fields` object".to_string())?;
            for f in rhrsc_runtime::telemetry::SERIES_FIELDS {
                let v = fields
                    .iter()
                    .find(|(k, _)| k == f.name)
                    .and_then(|(_, v)| v.as_f64());
                match v {
                    Some(v) if v.is_finite() => {}
                    _ => return Err(format!("sample field `{}` missing or non-finite", f.name)),
                }
            }
            Ok(())
        }
        "event" => {
            if doc
                .get("kind")
                .and_then(Json::as_str)
                .is_none_or(str::is_empty)
            {
                return Err("event record missing `kind`".to_string());
            }
            Ok(())
        }
        other => Err(format!("unknown telemetry record type `{other}`")),
    }
}

/// Validate a parsed Chrome/Perfetto `trace.json` flight record (as
/// written by [`rhrsc_runtime::trace::Tracer`]). Returns a description
/// of the first violation.
///
/// Checks the invariants a trace viewer relies on: a non-empty
/// `traceEvents` array, process/thread metadata, known phase codes, and
/// the per-phase required fields (`ts`/`dur` on complete spans, the
/// instant scope marker, counter args).
// Negated comparison forms deliberately reject NaN values.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
pub fn validate_trace(doc: &Json) -> Result<(), String> {
    let events = doc
        .get("traceEvents")
        .ok_or("missing key `traceEvents`".to_string())?
        .as_arr()
        .ok_or("traceEvents must be an array".to_string())?;
    if events.is_empty() {
        return Err("traceEvents must be non-empty".to_string());
    }
    let mut processes = 0usize;
    let mut payload = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {i} missing `ph`"))?;
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or(format!("event {i} missing `name`"))?;
        if name.is_empty() {
            return Err(format!("event {i} has an empty name"));
        }
        if ev.get("pid").and_then(Json::as_f64).is_none() {
            return Err(format!("event {i} (`{name}`) missing numeric `pid`"));
        }
        match ph {
            "M" => {
                if name == "process_name" {
                    processes += 1;
                }
                if ev.get("args").and_then(|a| a.get("name")).is_none() {
                    return Err(format!("metadata event {i} missing args.name"));
                }
            }
            "X" => {
                payload += 1;
                let ts = ev
                    .get("ts")
                    .and_then(Json::as_f64)
                    .ok_or(format!("span {i} (`{name}`) missing `ts`"))?;
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or(format!("span {i} (`{name}`) missing `dur`"))?;
                if !(ts >= 0.0) || !(dur >= 0.0) {
                    return Err(format!(
                        "span {i} (`{name}`) has negative ts/dur ({ts}/{dur})"
                    ));
                }
                if ev.get("tid").and_then(Json::as_f64).is_none() {
                    return Err(format!("span {i} (`{name}`) missing numeric `tid`"));
                }
            }
            "i" => {
                payload += 1;
                if ev.get("ts").and_then(Json::as_f64).is_none() {
                    return Err(format!("instant {i} (`{name}`) missing `ts`"));
                }
                if ev.get("s").and_then(Json::as_str).is_none() {
                    return Err(format!("instant {i} (`{name}`) missing scope `s`"));
                }
            }
            "C" => {
                payload += 1;
                if ev.get("args").and_then(Json::as_obj).is_none() {
                    return Err(format!("counter {i} (`{name}`) missing args object"));
                }
            }
            other => return Err(format!("event {i} (`{name}`) has unknown ph `{other}`")),
        }
    }
    if processes == 0 {
        return Err("no process_name metadata".to_string());
    }
    if payload == 0 {
        return Err("metadata only: no span/instant/counter events".to_string());
    }
    Ok(())
}

/// Print the human-readable phase-breakdown table for `--profile`.
///
/// Top-level `phase.*` rows share a common denominator (their summed
/// time); nested `sub.*` rows and counters are listed below without
/// shares (they overlap the phases above).
pub fn print_phase_table(title: &str, snap: &Snapshot) {
    println!("\n## Phase breakdown: {title}");
    let phase_total: f64 = snap
        .histograms
        .iter()
        .filter(|(k, _)| k.starts_with("phase."))
        .map(|(_, h)| h.sum as f64 * 1e-9)
        .sum();
    let mut t = Table::new(&[
        "phase", "total_s", "count", "mean_us", "p50_us", "p99_us", "share",
    ]);
    for (name, h) in &snap.histograms {
        if !name.starts_with("phase.") {
            continue;
        }
        let total_s = h.sum as f64 * 1e-9;
        t.row(&[
            name.clone(),
            format!("{total_s:.4}"),
            h.count.to_string(),
            f3(if h.count > 0 {
                h.sum as f64 * 1e-3 / h.count as f64
            } else {
                0.0
            }),
            f3(h.quantile(0.5) * 1e-3),
            f3(h.quantile(0.99) * 1e-3),
            format!("{:.1}%", 100.0 * total_s / phase_total.max(1e-30)),
        ]);
    }
    t.print();

    let subs: Vec<_> = snap
        .histograms
        .iter()
        .filter(|(k, _)| k.starts_with("sub."))
        .collect();
    if !subs.is_empty() {
        println!("  nested sections (overlap the phases above):");
        let mut t = Table::new(&["section", "total_s", "count", "mean_us", "p50_us", "p99_us"]);
        for (name, h) in subs {
            t.row(&[
                name.clone(),
                format!("{:.4}", h.sum as f64 * 1e-9),
                h.count.to_string(),
                f3(if h.count > 0 {
                    h.sum as f64 * 1e-3 / h.count as f64
                } else {
                    0.0
                }),
                f3(h.quantile(0.5) * 1e-3),
                f3(h.quantile(0.99) * 1e-3),
            ]);
        }
        t.print();
    }

    let values: Vec<_> = snap
        .histograms
        .iter()
        .filter(|(k, _)| !k.starts_with("phase.") && !k.starts_with("sub."))
        .collect();
    if !values.is_empty() {
        let mut t = Table::new(&["value", "count", "mean"]);
        for (name, h) in values {
            t.row(&[name.clone(), h.count.to_string(), f3(h.mean())]);
        }
        t.print();
    }

    if !snap.counters.is_empty() {
        let mut t = Table::new(&["counter", "value"]);
        for (name, v) in &snap.counters {
            t.row(&[name.clone(), v.to_string()]);
        }
        t.print();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhrsc_runtime::metrics::Registry;

    fn sample_snapshot() -> Snapshot {
        let r = Registry::new();
        r.histogram("phase.rhs.deep").record(40_000_000);
        r.histogram("phase.halo.wait").record(10_000_000);
        r.histogram("sub.c2p").record(5_000_000);
        r.histogram("c2p.newton_iters").record_batch(100, 400, 4);
        r.counter("comm.msgs.halo").add(8);
        r.snapshot()
    }

    #[test]
    fn report_round_trips_and_validates() {
        let snap = sample_snapshot();
        let mut rep = RunReport::new("unit_test");
        rep.config_str("grid", "8x8")
            .config_num("ranks", 4.0)
            .wall_time(0.06)
            .parallelism(1.0)
            .zone_updates(1280.0);
        let doc = Json::parse(&rep.to_json(&snap).pretty()).unwrap();
        validate_report(&doc).unwrap();
        assert_eq!(doc.get("id").unwrap().as_str(), Some("unit_test"));
        assert!(doc.get("zone_updates_per_sec").unwrap().as_f64().unwrap() > 0.0);
        // sub.* appears in phases but not in the consistency sum.
        let names: Vec<_> = doc
            .get("phases")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|p| p.get("name").unwrap().as_str().unwrap().to_string())
            .collect();
        assert!(names.contains(&"sub.c2p".to_string()));
        // c2p.newton_iters lands in values, not phases.
        assert!(!names.contains(&"c2p.newton_iters".to_string()));
    }

    #[test]
    fn validation_rejects_bad_reports() {
        let snap = sample_snapshot();
        let mut rep = RunReport::new("unit_test");
        rep.wall_time(0.06);
        let good = rep.to_json(&snap);

        // Phase totals exceeding wall × parallelism are rejected.
        rep.wall_time(1e-6);
        assert!(validate_report(&rep.to_json(&snap)).is_err());

        // Empty phases are rejected.
        let empty = RunReport::new("x");
        let mut no_phases = empty.to_json(&Snapshot::default());
        if let Json::Obj(members) = &mut no_phases {
            for (k, v) in members.iter_mut() {
                if k == "wall_time_s" {
                    *v = Json::Num(1.0);
                }
            }
        }
        assert!(validate_report(&no_phases).is_err());

        // Missing id is rejected.
        if let Json::Obj(members) = &good {
            let stripped = Json::Obj(members.iter().filter(|(k, _)| k != "id").cloned().collect());
            assert!(validate_report(&stripped).is_err());
        }
    }

    #[test]
    fn phase_table_prints_without_panicking() {
        print_phase_table("unit test", &sample_snapshot());
        print_phase_table("empty", &Snapshot::default());
    }

    #[test]
    fn report_writers_degrade_gracefully_on_unwritable_dirs() {
        // Tests run as root, where read-only permission bits are
        // ignored — so force the failure with a regular file standing
        // where a parent directory should be.
        let tmp = std::env::temp_dir().join("rhrsc_report_degrade_test");
        std::fs::create_dir_all(&tmp).unwrap();
        let blocker = tmp.join("blocker");
        std::fs::write(&blocker, b"not a directory").unwrap();
        let bad_dir = blocker.join("sub");

        let snap = sample_snapshot();
        let mut rep = RunReport::new("degrade_test");
        rep.wall_time(0.01);
        // Must warn and skip, not panic.
        let path = rep.write_to(&bad_dir, &snap);
        assert!(!path.exists());

        let mut t = Table::new(&["a"]);
        t.row(&["1".into()]);
        t.save_csv_to(&bad_dir, "degrade_test");
        assert!(!bad_dir.join("degrade_test.csv").exists());

        // A merely *missing* (but creatable) directory is created.
        let fresh = tmp.join("fresh").join("nested");
        let _ = std::fs::remove_dir_all(tmp.join("fresh"));
        let path = rep.write_to(&fresh, &snap);
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(tmp.join("fresh"));
    }

    #[test]
    fn bench_opts_trace_path_falls_back_to_env() {
        let o = BenchOpts {
            trace_out: Some(PathBuf::from("/tmp/x.json")),
            ..Default::default()
        };
        assert_eq!(o.trace_path(), Some(PathBuf::from("/tmp/x.json")));
    }

    #[test]
    fn bench_opts_arm_telemetry_via_sink_flags() {
        let detached = BenchOpts::default();
        assert!(detached.telemetry_config().is_none());
        let armed = BenchOpts {
            telemetry_out: Some(PathBuf::from("/tmp/t.jsonl")),
            ..Default::default()
        };
        let cfg = armed.telemetry_config().expect("sink flag arms telemetry");
        assert_eq!(
            cfg.interval,
            rhrsc_runtime::TelemetryConfig::default().interval
        );
    }

    fn sample_series() -> Vec<rhrsc_runtime::SeriesSample> {
        use rhrsc_runtime::telemetry::SERIES_FIELDS;
        (1..=3)
            .map(|i| rhrsc_runtime::SeriesSample {
                step: i,
                time: i as f64 * 0.1,
                t_ns: i * 1000,
                values: vec![i as f64; SERIES_FIELDS.len()],
            })
            .collect()
    }

    #[test]
    fn series_section_round_trips_and_validates() {
        let snap = sample_snapshot();
        let mut rep = RunReport::new("series_test");
        rep.wall_time(0.06).series(&sample_series());
        let doc = rep.to_json(&snap);
        validate_report(&doc).expect("report with series validates");
        let series = doc.get("series").expect("series section present");
        validate_series(series).expect("series section validates");
        let samples = series.get("samples").and_then(Json::as_arr).unwrap();
        assert_eq!(samples.len(), 3);

        // A report without samples simply omits the section.
        let bare = RunReport::new("no_series");
        let mut bare = bare;
        bare.wall_time(0.06);
        assert!(bare.to_json(&snap).get("series").is_none());
    }

    #[test]
    fn series_validation_rejects_malformed_blocks() {
        // Non-monotone steps.
        let mut samples = sample_series();
        samples[2].step = 1;
        let mut rep = RunReport::new("bad_series");
        rep.wall_time(0.06).series(&samples);
        let doc = rep.to_json(&sample_snapshot());
        assert!(validate_report(&doc).is_err());

        // Wrong field schema.
        let doc = Json::Obj(vec![
            (
                "fields".into(),
                Json::Arr(vec![Json::Str("step".into()), Json::Str("bogus".into())]),
            ),
            (
                "samples".into(),
                Json::Arr(vec![Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])]),
            ),
        ]);
        assert!(validate_series(&doc).is_err());
    }

    #[test]
    fn telemetry_line_validation() {
        let parse = Json::parse;
        let fields: String = rhrsc_runtime::telemetry::SERIES_FIELDS
            .iter()
            .map(|f| format!("\"{}\":1", f.name))
            .collect::<Vec<_>>()
            .join(",");
        let sample = parse(&format!(
            "{{\"type\":\"sample\",\"pid\":0,\"step\":1,\"time\":0.1,\"t_ns\":5,\"fields\":{{{fields}}}}}"
        ))
        .unwrap();
        validate_telemetry_line(&sample).expect("full sample validates");

        let event = parse(
            "{\"type\":\"event\",\"pid\":1,\"kind\":\"suspect\",\"step\":2,\"t_ns\":9,\"value\":1}",
        )
        .unwrap();
        validate_telemetry_line(&event).expect("event validates");

        // Missing a schema field fails.
        let partial = parse(
            "{\"type\":\"sample\",\"pid\":0,\"step\":1,\"time\":0.1,\"t_ns\":5,\"fields\":{\"dt\":1}}",
        )
        .unwrap();
        assert!(validate_telemetry_line(&partial).is_err());
        // Unknown record types fail.
        let unknown = parse("{\"type\":\"bogus\",\"pid\":0,\"step\":1,\"t_ns\":5}").unwrap();
        assert!(validate_telemetry_line(&unknown).is_err());
    }
}
