//! Structured BENCH run reports and the `--profile` phase table.
//!
//! Every headline experiment binary (F4/F5/F7/F9/T3) emits a
//! machine-readable `results/BENCH_<id>.json` run report alongside its
//! CSV — the benchmark trajectory later performance PRs are judged
//! against. Schema (version 1):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "id": "f7_overlap",
//!   "build": {"package_version": "...", "debug": false,
//!             "os": "linux", "arch": "x86_64"},
//!   "timestamp_unix": 1754438400,
//!   "config": {"...": "bench-specific key/values"},
//!   "wall_time_s": 1.25,
//!   "parallelism": 4,
//!   "zone_updates": 2621440,          // optional
//!   "zone_updates_per_sec": 2.1e6,    // derived, optional
//!   "phases":   [{"name": "phase.halo.wait", "total_s": 0.5,
//!                 "count": 240, "mean_s": 0.002}],
//!   "counters": {"comm.msgs.halo": 960},
//!   "values":   [{"name": "c2p.newton_iters", "count": 655360,
//!                 "sum": 2621440, "mean": 4.0}]
//! }
//! ```
//!
//! `phases` holds every duration histogram (names prefixed `phase.` for
//! disjoint top-level step phases, `sub.` for nested sections — see
//! DESIGN.md "Observability"); `values` holds the remaining, unit-less
//! histograms. Totals are summed across ranks, so a consistency check
//! must compare against `wall_time_s × parallelism`, not wall time
//! alone.

use crate::json::{obj, Json};
use crate::{f3, results_dir, Table};
use rhrsc_runtime::metrics::Snapshot;
use std::path::{Path, PathBuf};

/// Command-line options shared by the bench binaries.
#[derive(Clone, Debug, Default)]
pub struct BenchOpts {
    /// Print the phase-breakdown table (`--profile`).
    pub profile: bool,
    /// Shrink the problem for CI smoke runs (`--toy`).
    pub toy: bool,
    /// Write a Chrome/Perfetto `trace.json` of the instrumented run
    /// (`--trace-out <path>`).
    pub trace_out: Option<PathBuf>,
}

impl BenchOpts {
    /// Parse `--profile` / `--toy` / `--trace-out <path>` from
    /// `std::env::args`, warning on anything else.
    pub fn from_args() -> Self {
        let mut o = BenchOpts::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--profile" => o.profile = true,
                "--toy" => o.toy = true,
                "--trace-out" => match args.next() {
                    Some(p) => o.trace_out = Some(PathBuf::from(p)),
                    None => eprintln!("warning: --trace-out requires a path argument"),
                },
                other => match other.strip_prefix("--trace-out=") {
                    Some(p) => o.trace_out = Some(PathBuf::from(p)),
                    None => eprintln!("warning: ignoring unknown argument `{other}`"),
                },
            }
        }
        o
    }

    /// The trace destination: `--trace-out` if given, else the
    /// `RHRSC_TRACE` environment variable.
    pub fn trace_path(&self) -> Option<PathBuf> {
        self.trace_out
            .clone()
            .or_else(|| std::env::var_os("RHRSC_TRACE").map(PathBuf::from))
    }
}

/// Builder for a `BENCH_<id>.json` run report.
pub struct RunReport {
    id: String,
    config: Vec<(String, Json)>,
    wall_time_s: f64,
    parallelism: f64,
    zone_updates: Option<f64>,
}

impl RunReport {
    /// Start a report for experiment `id` (e.g. `f4_strong_scaling`).
    pub fn new(id: &str) -> Self {
        RunReport {
            id: id.to_string(),
            config: Vec::new(),
            wall_time_s: 0.0,
            parallelism: 1.0,
            zone_updates: None,
        }
    }

    /// Record a bench-specific config entry (string value).
    pub fn config_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.config.push((key.to_string(), Json::Str(value.into())));
        self
    }

    /// Record a bench-specific config entry (numeric value).
    pub fn config_num(&mut self, key: &str, value: f64) -> &mut Self {
        self.config.push((key.to_string(), Json::Num(value)));
        self
    }

    /// Total wall-clock time of the measured section, seconds.
    pub fn wall_time(&mut self, secs: f64) -> &mut Self {
        self.wall_time_s = secs;
        self
    }

    /// Number of concurrent workers contributing to the phase totals
    /// (simulated ranks): phase sums may legitimately reach
    /// `wall_time × parallelism`.
    pub fn parallelism(&mut self, p: f64) -> &mut Self {
        self.parallelism = p;
        self
    }

    /// Total zone updates performed (cells × RK stages × steps); derives
    /// `zone_updates_per_sec`.
    pub fn zone_updates(&mut self, z: f64) -> &mut Self {
        self.zone_updates = Some(z);
        self
    }

    /// Render the report document from a metrics snapshot.
    pub fn to_json(&self, snap: &Snapshot) -> Json {
        let mut phases = Vec::new();
        let mut values = Vec::new();
        for (name, h) in &snap.histograms {
            if name.starts_with("phase.") || name.starts_with("sub.") {
                let total_s = h.sum as f64 * 1e-9;
                phases.push(obj(vec![
                    ("name", Json::Str(name.clone())),
                    ("total_s", Json::Num(total_s)),
                    ("count", Json::Num(h.count as f64)),
                    (
                        "mean_s",
                        Json::Num(if h.count > 0 {
                            total_s / h.count as f64
                        } else {
                            0.0
                        }),
                    ),
                ]));
            } else {
                values.push(obj(vec![
                    ("name", Json::Str(name.clone())),
                    ("count", Json::Num(h.count as f64)),
                    ("sum", Json::Num(h.sum as f64)),
                    ("mean", Json::Num(h.mean())),
                ]));
            }
        }
        let counters = Json::Obj(
            snap.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                .collect(),
        );
        let timestamp = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mut members = vec![
            ("schema_version", Json::Num(1.0)),
            ("id", Json::Str(self.id.clone())),
            (
                "build",
                obj(vec![
                    (
                        "package_version",
                        Json::Str(env!("CARGO_PKG_VERSION").to_string()),
                    ),
                    ("debug", Json::Bool(cfg!(debug_assertions))),
                    ("os", Json::Str(std::env::consts::OS.to_string())),
                    ("arch", Json::Str(std::env::consts::ARCH.to_string())),
                ]),
            ),
            ("timestamp_unix", Json::Num(timestamp as f64)),
            ("config", Json::Obj(self.config.clone())),
            ("wall_time_s", Json::Num(self.wall_time_s)),
            ("parallelism", Json::Num(self.parallelism)),
        ];
        if let Some(z) = self.zone_updates {
            members.push(("zone_updates", Json::Num(z)));
            if self.wall_time_s > 0.0 {
                members.push(("zone_updates_per_sec", Json::Num(z / self.wall_time_s)));
            }
        }
        members.push(("phases", Json::Arr(phases)));
        members.push(("counters", counters));
        members.push(("values", Json::Arr(values)));
        obj(members)
    }

    /// Write `BENCH_<id>.json` into `dir`, returning the path. Missing
    /// parent directories are created; an unwritable destination warns
    /// and skips instead of panicking (the report content was already
    /// rendered, and a bench on a read-only filesystem should still run
    /// to completion).
    pub fn write_to(&self, dir: &Path, snap: &Snapshot) -> PathBuf {
        let path = dir.join(format!("BENCH_{}.json", self.id));
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
        }
        if let Err(e) = std::fs::write(&path, self.to_json(snap).pretty()) {
            eprintln!(
                "warning: cannot write BENCH report {}: {e}; skipping",
                path.display()
            );
        }
        path
    }

    /// Write `results/BENCH_<id>.json`, returning the path.
    pub fn write(&self, snap: &Snapshot) -> PathBuf {
        let path = self.write_to(&results_dir(), snap);
        println!("  -> wrote {}", path.display());
        path
    }
}

/// Validate a parsed `BENCH_*.json` document against schema version 1.
/// Returns a description of the first violation.
// Negated comparison forms deliberately reject NaN values.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
pub fn validate_report(doc: &Json) -> Result<(), String> {
    let need = |key: &str| doc.get(key).ok_or(format!("missing key `{key}`"));
    if need("schema_version")?.as_f64() != Some(1.0) {
        return Err("schema_version != 1".to_string());
    }
    if need("id")?.as_str().is_none_or(str::is_empty) {
        return Err("id must be a non-empty string".to_string());
    }
    let build = need("build")?;
    for key in ["package_version", "os", "arch"] {
        if build.get(key).and_then(Json::as_str).is_none() {
            return Err(format!("build.{key} must be a string"));
        }
    }
    need("config")?
        .as_obj()
        .ok_or("config must be an object".to_string())?;
    let wall = need("wall_time_s")?
        .as_f64()
        .ok_or("wall_time_s must be a number".to_string())?;
    if !(wall > 0.0) {
        return Err(format!("wall_time_s must be positive, got {wall}"));
    }
    let parallelism = need("parallelism")?.as_f64().unwrap_or(1.0).max(1.0);
    let phases = need("phases")?
        .as_arr()
        .ok_or("phases must be an array".to_string())?;
    if phases.is_empty() {
        return Err("phases must be non-empty".to_string());
    }
    let mut phase_sum = 0.0;
    for p in phases {
        let name = p
            .get("name")
            .and_then(Json::as_str)
            .ok_or("phase missing name".to_string())?;
        let total = p
            .get("total_s")
            .and_then(Json::as_f64)
            .ok_or(format!("phase `{name}` missing total_s"))?;
        if total < 0.0 {
            return Err(format!("phase `{name}` has negative total_s"));
        }
        if p.get("count").and_then(Json::as_f64).is_none() {
            return Err(format!("phase `{name}` missing count"));
        }
        // `sub.*` sections nest inside `phase.*` sections; only count the
        // disjoint top-level phases toward the wall-time consistency sum.
        if name.starts_with("phase.") {
            phase_sum += total;
        }
    }
    if !(phase_sum > 0.0) {
        return Err("sum of phase totals must be positive".to_string());
    }
    let budget = wall * parallelism * 1.1;
    if phase_sum > budget {
        return Err(format!(
            "phase totals ({phase_sum:.3} s) exceed wall_time × parallelism ({budget:.3} s)"
        ));
    }
    if let Some(rate) = doc.get("zone_updates_per_sec").and_then(Json::as_f64) {
        if !(rate > 0.0) {
            return Err(format!("zone_updates_per_sec must be positive, got {rate}"));
        }
    }
    Ok(())
}

/// Validate a parsed Chrome/Perfetto `trace.json` flight record (as
/// written by [`rhrsc_runtime::trace::Tracer`]). Returns a description
/// of the first violation.
///
/// Checks the invariants a trace viewer relies on: a non-empty
/// `traceEvents` array, process/thread metadata, known phase codes, and
/// the per-phase required fields (`ts`/`dur` on complete spans, the
/// instant scope marker, counter args).
// Negated comparison forms deliberately reject NaN values.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
pub fn validate_trace(doc: &Json) -> Result<(), String> {
    let events = doc
        .get("traceEvents")
        .ok_or("missing key `traceEvents`".to_string())?
        .as_arr()
        .ok_or("traceEvents must be an array".to_string())?;
    if events.is_empty() {
        return Err("traceEvents must be non-empty".to_string());
    }
    let mut processes = 0usize;
    let mut payload = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or(format!("event {i} missing `ph`"))?;
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or(format!("event {i} missing `name`"))?;
        if name.is_empty() {
            return Err(format!("event {i} has an empty name"));
        }
        if ev.get("pid").and_then(Json::as_f64).is_none() {
            return Err(format!("event {i} (`{name}`) missing numeric `pid`"));
        }
        match ph {
            "M" => {
                if name == "process_name" {
                    processes += 1;
                }
                if ev.get("args").and_then(|a| a.get("name")).is_none() {
                    return Err(format!("metadata event {i} missing args.name"));
                }
            }
            "X" => {
                payload += 1;
                let ts = ev
                    .get("ts")
                    .and_then(Json::as_f64)
                    .ok_or(format!("span {i} (`{name}`) missing `ts`"))?;
                let dur = ev
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or(format!("span {i} (`{name}`) missing `dur`"))?;
                if !(ts >= 0.0) || !(dur >= 0.0) {
                    return Err(format!(
                        "span {i} (`{name}`) has negative ts/dur ({ts}/{dur})"
                    ));
                }
                if ev.get("tid").and_then(Json::as_f64).is_none() {
                    return Err(format!("span {i} (`{name}`) missing numeric `tid`"));
                }
            }
            "i" => {
                payload += 1;
                if ev.get("ts").and_then(Json::as_f64).is_none() {
                    return Err(format!("instant {i} (`{name}`) missing `ts`"));
                }
                if ev.get("s").and_then(Json::as_str).is_none() {
                    return Err(format!("instant {i} (`{name}`) missing scope `s`"));
                }
            }
            "C" => {
                payload += 1;
                if ev.get("args").and_then(Json::as_obj).is_none() {
                    return Err(format!("counter {i} (`{name}`) missing args object"));
                }
            }
            other => return Err(format!("event {i} (`{name}`) has unknown ph `{other}`")),
        }
    }
    if processes == 0 {
        return Err("no process_name metadata".to_string());
    }
    if payload == 0 {
        return Err("metadata only: no span/instant/counter events".to_string());
    }
    Ok(())
}

/// Print the human-readable phase-breakdown table for `--profile`.
///
/// Top-level `phase.*` rows share a common denominator (their summed
/// time); nested `sub.*` rows and counters are listed below without
/// shares (they overlap the phases above).
pub fn print_phase_table(title: &str, snap: &Snapshot) {
    println!("\n## Phase breakdown: {title}");
    let phase_total: f64 = snap
        .histograms
        .iter()
        .filter(|(k, _)| k.starts_with("phase."))
        .map(|(_, h)| h.sum as f64 * 1e-9)
        .sum();
    let mut t = Table::new(&["phase", "total_s", "count", "mean_us", "share"]);
    for (name, h) in &snap.histograms {
        if !name.starts_with("phase.") {
            continue;
        }
        let total_s = h.sum as f64 * 1e-9;
        t.row(&[
            name.clone(),
            format!("{total_s:.4}"),
            h.count.to_string(),
            f3(if h.count > 0 {
                h.sum as f64 * 1e-3 / h.count as f64
            } else {
                0.0
            }),
            format!("{:.1}%", 100.0 * total_s / phase_total.max(1e-30)),
        ]);
    }
    t.print();

    let subs: Vec<_> = snap
        .histograms
        .iter()
        .filter(|(k, _)| k.starts_with("sub."))
        .collect();
    if !subs.is_empty() {
        println!("  nested sections (overlap the phases above):");
        let mut t = Table::new(&["section", "total_s", "count", "mean_us"]);
        for (name, h) in subs {
            t.row(&[
                name.clone(),
                format!("{:.4}", h.sum as f64 * 1e-9),
                h.count.to_string(),
                f3(if h.count > 0 {
                    h.sum as f64 * 1e-3 / h.count as f64
                } else {
                    0.0
                }),
            ]);
        }
        t.print();
    }

    let values: Vec<_> = snap
        .histograms
        .iter()
        .filter(|(k, _)| !k.starts_with("phase.") && !k.starts_with("sub."))
        .collect();
    if !values.is_empty() {
        let mut t = Table::new(&["value", "count", "mean"]);
        for (name, h) in values {
            t.row(&[name.clone(), h.count.to_string(), f3(h.mean())]);
        }
        t.print();
    }

    if !snap.counters.is_empty() {
        let mut t = Table::new(&["counter", "value"]);
        for (name, v) in &snap.counters {
            t.row(&[name.clone(), v.to_string()]);
        }
        t.print();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rhrsc_runtime::metrics::Registry;

    fn sample_snapshot() -> Snapshot {
        let r = Registry::new();
        r.histogram("phase.rhs.deep").record(40_000_000);
        r.histogram("phase.halo.wait").record(10_000_000);
        r.histogram("sub.c2p").record(5_000_000);
        r.histogram("c2p.newton_iters").record_batch(100, 400, 4);
        r.counter("comm.msgs.halo").add(8);
        r.snapshot()
    }

    #[test]
    fn report_round_trips_and_validates() {
        let snap = sample_snapshot();
        let mut rep = RunReport::new("unit_test");
        rep.config_str("grid", "8x8")
            .config_num("ranks", 4.0)
            .wall_time(0.06)
            .parallelism(1.0)
            .zone_updates(1280.0);
        let doc = Json::parse(&rep.to_json(&snap).pretty()).unwrap();
        validate_report(&doc).unwrap();
        assert_eq!(doc.get("id").unwrap().as_str(), Some("unit_test"));
        assert!(doc.get("zone_updates_per_sec").unwrap().as_f64().unwrap() > 0.0);
        // sub.* appears in phases but not in the consistency sum.
        let names: Vec<_> = doc
            .get("phases")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|p| p.get("name").unwrap().as_str().unwrap().to_string())
            .collect();
        assert!(names.contains(&"sub.c2p".to_string()));
        // c2p.newton_iters lands in values, not phases.
        assert!(!names.contains(&"c2p.newton_iters".to_string()));
    }

    #[test]
    fn validation_rejects_bad_reports() {
        let snap = sample_snapshot();
        let mut rep = RunReport::new("unit_test");
        rep.wall_time(0.06);
        let good = rep.to_json(&snap);

        // Phase totals exceeding wall × parallelism are rejected.
        rep.wall_time(1e-6);
        assert!(validate_report(&rep.to_json(&snap)).is_err());

        // Empty phases are rejected.
        let empty = RunReport::new("x");
        let mut no_phases = empty.to_json(&Snapshot::default());
        if let Json::Obj(members) = &mut no_phases {
            for (k, v) in members.iter_mut() {
                if k == "wall_time_s" {
                    *v = Json::Num(1.0);
                }
            }
        }
        assert!(validate_report(&no_phases).is_err());

        // Missing id is rejected.
        if let Json::Obj(members) = &good {
            let stripped = Json::Obj(members.iter().filter(|(k, _)| k != "id").cloned().collect());
            assert!(validate_report(&stripped).is_err());
        }
    }

    #[test]
    fn phase_table_prints_without_panicking() {
        print_phase_table("unit test", &sample_snapshot());
        print_phase_table("empty", &Snapshot::default());
    }

    #[test]
    fn report_writers_degrade_gracefully_on_unwritable_dirs() {
        // Tests run as root, where read-only permission bits are
        // ignored — so force the failure with a regular file standing
        // where a parent directory should be.
        let tmp = std::env::temp_dir().join("rhrsc_report_degrade_test");
        std::fs::create_dir_all(&tmp).unwrap();
        let blocker = tmp.join("blocker");
        std::fs::write(&blocker, b"not a directory").unwrap();
        let bad_dir = blocker.join("sub");

        let snap = sample_snapshot();
        let mut rep = RunReport::new("degrade_test");
        rep.wall_time(0.01);
        // Must warn and skip, not panic.
        let path = rep.write_to(&bad_dir, &snap);
        assert!(!path.exists());

        let mut t = Table::new(&["a"]);
        t.row(&["1".into()]);
        t.save_csv_to(&bad_dir, "degrade_test");
        assert!(!bad_dir.join("degrade_test.csv").exists());

        // A merely *missing* (but creatable) directory is created.
        let fresh = tmp.join("fresh").join("nested");
        let _ = std::fs::remove_dir_all(tmp.join("fresh"));
        let path = rep.write_to(&fresh, &snap);
        assert!(path.exists());
        let _ = std::fs::remove_dir_all(tmp.join("fresh"));
    }

    #[test]
    fn bench_opts_trace_path_falls_back_to_env() {
        let o = BenchOpts {
            trace_out: Some(PathBuf::from("/tmp/x.json")),
            ..Default::default()
        };
        assert_eq!(o.trace_path(), Some(PathBuf::from("/tmp/x.json")));
    }
}
