//! Parse-back tests for the flight-recorder's Chrome/Perfetto export:
//! the hand-rolled `trace.json` writer in `rhrsc-runtime` against the
//! hand-rolled JSON reader in `rhrsc-bench`, plus the end-to-end
//! killed-rank acceptance shape (victim heartbeats → suspicion →
//! consensus → eviction → shrink-restore, in that order).

use rhrsc_bench::{validate_trace, Json};
use rhrsc_comm::{run_with_faults, FaultPlan, NetworkModel};
use rhrsc_grid::{bc, Bc, CartDecomp};
use rhrsc_runtime::trace::Tracer;
use rhrsc_solver::driver::{BlockSolver, DistConfig, ExchangeMode, ResilienceConfig};
use rhrsc_solver::scheme::SolverError;
use rhrsc_solver::{HealthConfig, RkOrder, Scheme};
use rhrsc_srhd::Prim;
use std::sync::Arc;
use std::time::Duration;

/// All non-metadata events as (ts_us, pid, name) in file order.
fn payload_events(doc: &Json) -> Vec<(f64, u32, String)> {
    doc.get("traceEvents")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) != Some("M"))
        .map(|e| {
            (
                e.get("ts").and_then(Json::as_f64).unwrap(),
                e.get("pid").and_then(Json::as_f64).unwrap() as u32,
                e.get("name").and_then(Json::as_str).unwrap().to_string(),
            )
        })
        .collect()
}

#[test]
fn multi_rank_virtual_time_trace_round_trips_in_merge_order() {
    // Two "ranks" stamp events under a virtual clock, deliberately
    // recorded out of global order (rank 1 first); the merged export
    // must come back time-sorted with virtual seconds scaled to
    // microsecond timestamps.
    let tr = Tracer::new(64);
    let r0 = tr.track(0, 0, "main");
    let r1 = tr.track(1, 0, "main");
    r1.span("phase.rhs", tr.stamp(Some(0.5)), tr.stamp(Some(0.75)));
    r1.instant("liveness.suspect", tr.stamp(Some(1.5)), 0.0);
    r0.span("phase.rhs", tr.stamp(Some(0.25)), tr.stamp(Some(0.5)));
    r0.counter("health.drift", tr.stamp(Some(1.0)), 1e-12);
    r0.instant("hb.send", tr.stamp(Some(1.25)), 0.0);

    let doc = Json::parse(&tr.to_chrome_json()).expect("trace must be parseable JSON");
    validate_trace(&doc).expect("trace must satisfy the viewer schema");

    let events = payload_events(&doc);
    assert_eq!(events.len(), 5);
    let ts: Vec<f64> = events.iter().map(|(t, _, _)| *t).collect();
    assert!(
        ts.windows(2).all(|w| w[0] <= w[1]),
        "merged events must be time-ordered: {ts:?}"
    );
    // Virtual seconds → microseconds: the 0.25 s span start lands at
    // 2.5e5 µs, rank order follows virtual stamps not insertion order.
    assert_eq!(events[0], (2.5e5, 0, "phase.rhs".to_string()));
    assert_eq!(events[1].1, 1);
    assert_eq!(events.last().unwrap().2, "liveness.suspect");
}

fn crash_cfg(n: usize) -> DistConfig {
    DistConfig {
        scheme: Scheme::default_with_gamma(5.0 / 3.0),
        rk: RkOrder::Rk2,
        global_n: [n, n, 1],
        domain: ([0.0; 3], [1.0, 1.0, 1.0]),
        decomp: CartDecomp {
            dims: [2, 2, 1],
            periodic: [false, false, false],
        },
        bcs: bc::uniform(Bc::Outflow),
        cfl: 0.4,
        mode: ExchangeMode::Overlap,
        gang_threads: 0,
        dt_refresh_interval: 1,
    }
}

#[test]
fn killed_rank_trace_shows_failover_in_causal_order() {
    let cfg = crash_cfg(16);
    let ic = |x: [f64; 3]| {
        let r2 = (x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2);
        Prim::at_rest(1.0, if r2 < 0.01 { 100.0 } else { 1.0 })
    };
    let ckp = std::env::temp_dir().join("rhrsc-trace-json-test");
    let _ = std::fs::remove_dir_all(&ckp);
    let res = ResilienceConfig {
        checkpoint_interval: 2,
        checkpoint_dir: Some(ckp.clone()),
        ..ResilienceConfig::default()
    };
    let plan = FaultPlan {
        seed: 3,
        crash_rank: Some(0),
        crash_step: 4,
        ..FaultPlan::disabled()
    };
    let tracer = Arc::new(Tracer::new(4096));
    let model = NetworkModel::ideal().with_suspect_after(Duration::from_millis(100));
    let tr = tracer.clone();
    let outs = run_with_faults(4, model, Some(plan), move |rank| {
        rank.set_trace(tr.clone());
        let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
        solver.set_health(HealthConfig {
            verbose: false,
            ..Default::default()
        });
        match solver.advance_to_with_restart(rank, &mut u, 0.0, 0.1, &res) {
            Ok(_) => true,
            Err(SolverError::RankFailed { .. }) => false,
            Err(e) => panic!("rank {}: unexpected error {e}", rank.rank()),
        }
    });
    let _ = std::fs::remove_dir_all(&ckp);
    assert!(!outs[0], "the victim must report RankFailed");
    assert_eq!(outs.iter().filter(|&&ok| ok).count(), 3);

    let doc = Json::parse(&tracer.to_chrome_json()).expect("trace must parse");
    validate_trace(&doc).expect("trace must satisfy the viewer schema");
    let events = payload_events(&doc);

    let last = |pred: &dyn Fn(&(f64, u32, String)) -> bool| {
        events
            .iter()
            .filter(|e| pred(e))
            .map(|e| e.0)
            .fold(f64::NAN, f64::max)
    };
    let first = |name: &str| {
        events
            .iter()
            .find(|(_, _, n)| n == name)
            .unwrap_or_else(|| panic!("no `{name}` event in trace"))
            .0
    };
    // The victim's flight record ends with its final heartbeat; only
    // after that do the survivors suspect, reach consensus, evict, and
    // restore the shrunken communicator.
    let victim_last_hb = last(&|(_, pid, n)| *pid == 0 && n == "hb.send");
    assert!(victim_last_hb.is_finite(), "victim heartbeats missing");
    let suspect = first("liveness.suspect");
    let consensus = first("liveness.consensus");
    let evict = first("liveness.evict");
    let shrink = first("driver.shrink_restore");
    assert!(
        victim_last_hb <= suspect && suspect <= evict && shrink >= consensus,
        "failover events out of causal order: hb {victim_last_hb}, suspect {suspect}, \
         consensus {consensus}, evict {evict}, shrink {shrink}"
    );
    // Suspicion instants come from survivors, never the dead rank.
    assert!(events
        .iter()
        .filter(|(_, _, n)| n == "liveness.suspect")
        .all(|(_, pid, _)| *pid != 0));
}
