//! End-to-end smoke test of the BENCH report pipeline: run a toy
//! distributed problem with metrics attached, write a `BENCH_*.json`
//! report, parse it back and validate it against the schema.

use rhrsc_bench::{validate_report, Json, RunReport};
use rhrsc_comm::{run, NetworkModel};
use rhrsc_grid::{bc, Bc, CartDecomp};
use rhrsc_runtime::Registry;
use rhrsc_solver::driver::{BlockSolver, DistConfig, ExchangeMode};
use rhrsc_solver::{RkOrder, Scheme};
use rhrsc_srhd::Prim;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn bench_report_round_trips_through_disk_and_validates() {
    let cfg = DistConfig {
        scheme: Scheme::default_with_gamma(5.0 / 3.0),
        rk: RkOrder::Rk2,
        global_n: [48, 48, 1],
        domain: ([0.0; 3], [1.0, 1.0, 1.0]),
        decomp: CartDecomp {
            dims: [2, 1, 1],
            periodic: [true, true, false],
        },
        bcs: bc::uniform(Bc::Periodic),
        cfl: 0.4,
        mode: ExchangeMode::Overlap,
        gang_threads: 0,
        dt_refresh_interval: 2,
    };
    let ic = |x: [f64; 3]| Prim {
        rho: 1.0 + 0.3 * (2.0 * std::f64::consts::PI * x[0]).sin(),
        vel: [0.3, 0.1, 0.0],
        p: 1.0,
    };
    let nsteps = 4;
    let reg = Arc::new(Registry::new());
    let model = NetworkModel::virtual_cluster(Duration::from_micros(20), 10e9);
    let stats = {
        let (reg, cfg) = (reg.clone(), &cfg);
        run(2, model, move |rank| {
            rank.set_metrics(reg.clone());
            let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
            solver.set_metrics(reg.clone());
            solver.advance_steps(rank, &mut u, nsteps).unwrap()
        })
    };
    let makespan = stats.iter().map(|s| s.vtime).fold(0.0, f64::max);
    let zone_updates: u64 = stats.iter().map(|s| s.zone_updates).sum();
    assert!(makespan > 0.0);

    let dir = std::env::temp_dir().join("rhrsc-report-smoke");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let snap = reg.snapshot();
    let path = RunReport::new("smoke")
        .config_num("global_n", 48.0)
        .config_num("nsteps", nsteps as f64)
        .config_str("mode", "overlap")
        .wall_time(makespan)
        .parallelism(2.0)
        .zone_updates(zone_updates as f64)
        .write_to(&dir, &snap);
    assert_eq!(path.file_name().unwrap(), "BENCH_smoke.json");

    let text = std::fs::read_to_string(&path).unwrap();
    let doc = Json::parse(&text).expect("report must parse");
    validate_report(&doc).expect("report must validate");

    // Phase totals are positive and no larger than the run can explain:
    // the two ranks together can accumulate at most 2x the makespan.
    let phases = doc.get("phases").unwrap().as_arr().unwrap();
    assert!(!phases.is_empty());
    let mut phase_sum = 0.0;
    for p in phases {
        let name = p.get("name").unwrap().as_str().unwrap();
        let total = p.get("total_s").unwrap().as_f64().unwrap();
        assert!(total >= 0.0, "{name} has negative total");
        if name.starts_with("phase.") {
            phase_sum += total;
        }
    }
    assert!(phase_sum > 0.0, "no phase time recorded");
    assert!(
        phase_sum <= 2.0 * makespan * 1.1,
        "phase sum {phase_sum} exceeds 2 ranks x makespan {makespan}"
    );
    // Derived throughput is present and positive.
    let zups = doc.get("zone_updates_per_sec").unwrap().as_f64().unwrap();
    assert!(zups > 0.0);
    let _ = std::fs::remove_dir_all(&dir);
}
