//! Equations of state (EOS) for special-relativistic hydrodynamics.
//!
//! An EOS closes the relativistic Euler system by relating pressure to the
//! rest-mass density `rho` and specific internal energy `eps`. All
//! thermodynamic quantities here follow the conventions of Martí & Müller's
//! Living Review on numerical special-relativistic hydrodynamics:
//!
//! * `rho` — rest-mass density (baryon density times baryon mass),
//! * `eps` — specific internal energy (per unit rest mass),
//! * `p` — pressure,
//! * `h = 1 + eps + p/rho` — specific enthalpy,
//! * `theta = p / rho` — temperature-like variable,
//! * `cs` — local sound speed, `cs^2 = (1/h) (dp/drho |_s)`.
//!
//! Two equations of state are provided:
//!
//! * [`Eos::IdealGas`] — the constant-Γ ("gamma-law") ideal gas,
//!   `p = (Γ-1) rho eps`, the standard choice in HRSC code validation and
//!   the EOS for which the exact Riemann solver is available.
//! * [`Eos::TaubMathews`] — the Taub–Mathews approximation to the Synge
//!   relativistic perfect gas (Mignone, Plewa & Bodo 2005), which smoothly
//!   interpolates the effective adiabatic index between 5/3 (cold) and 4/3
//!   (ultrarelativistically hot) and satisfies the Taub inequality.
//!
//! The EOS is a small `Copy` enum rather than a trait object so that the hot
//! per-zone kernels dispatch with a branch instead of an indirect call and
//! stay inlinable.

/// Equation of state for a relativistic perfect fluid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Eos {
    /// Constant-Γ ideal gas: `p = (Γ - 1) rho eps`.
    IdealGas {
        /// Adiabatic index Γ. Physical range is `1 < Γ <= 2`; relativistic
        /// causality requires `Γ <= 2` for this EOS.
        gamma: f64,
    },
    /// Taub–Mathews approximate Synge gas:
    /// `h(Θ) = (5/2) Θ + sqrt((9/4) Θ² + 1)` with `Θ = p/rho`.
    TaubMathews,
}

impl Eos {
    /// Convenience constructor for the ideal-gas EOS.
    ///
    /// # Panics
    /// Panics if `gamma` is not in `(1, 2]`.
    pub fn ideal(gamma: f64) -> Self {
        assert!(
            gamma > 1.0 && gamma <= 2.0,
            "ideal-gas adiabatic index must be in (1, 2], got {gamma}"
        );
        Eos::IdealGas { gamma }
    }

    /// Pressure from rest-mass density and specific internal energy.
    #[inline]
    pub fn pressure(&self, rho: f64, eps: f64) -> f64 {
        match *self {
            Eos::IdealGas { gamma } => (gamma - 1.0) * rho * eps,
            // Invert eps(Θ) = h - 1 - Θ = (3/2)Θ + sqrt((9/4)Θ²+1) - 1,
            // which has the closed form Θ = eps (eps + 2) / (3 (eps + 1)).
            Eos::TaubMathews => rho * eps * (eps + 2.0) / (3.0 * (eps + 1.0)),
        }
    }

    /// Specific internal energy from rest-mass density and pressure.
    #[inline]
    pub fn eps(&self, rho: f64, p: f64) -> f64 {
        match *self {
            Eos::IdealGas { gamma } => p / ((gamma - 1.0) * rho),
            Eos::TaubMathews => {
                let theta = p / rho;
                // eps = h - 1 - Θ = (3/2)Θ + (sqrt((9/4)Θ²+1) - 1); the last
                // term is written cancellation-free for small Θ.
                let x = 2.25 * theta * theta;
                1.5 * theta + x / ((x + 1.0).sqrt() + 1.0)
            }
        }
    }

    /// Specific enthalpy `h = 1 + eps + p/rho`.
    #[inline]
    pub fn enthalpy(&self, rho: f64, p: f64) -> f64 {
        match *self {
            Eos::IdealGas { gamma } => 1.0 + gamma / (gamma - 1.0) * (p / rho),
            Eos::TaubMathews => {
                let theta = p / rho;
                2.5 * theta + (2.25 * theta * theta + 1.0).sqrt()
            }
        }
    }

    /// Squared local sound speed `cs²`.
    ///
    /// For the ideal gas, `cs² = Γ p / (rho h)`. For Taub–Mathews,
    /// `cs² = Θ (5h - 8Θ) / (3 h (h - Θ))` (Mignone & Bodo 2007).
    #[inline]
    pub fn sound_speed_sq(&self, rho: f64, p: f64) -> f64 {
        match *self {
            Eos::IdealGas { gamma } => {
                let h = self.enthalpy(rho, p);
                gamma * p / (rho * h)
            }
            Eos::TaubMathews => {
                let theta = p / rho;
                let h = self.enthalpy(rho, p);
                theta * (5.0 * h - 8.0 * theta) / (3.0 * h * (h - theta))
            }
        }
    }

    /// Local sound speed `cs` (clamped to `[0, 1)` against round-off).
    #[inline]
    pub fn sound_speed(&self, rho: f64, p: f64) -> f64 {
        self.sound_speed_sq(rho, p).clamp(0.0, 1.0 - 1e-15).sqrt()
    }

    /// Effective adiabatic index `Γ_eff = 1 + p / (rho eps)`.
    ///
    /// Constant `Γ` for the ideal gas; varies between 4/3 (hot) and 5/3
    /// (cold) for Taub–Mathews.
    #[inline]
    pub fn gamma_eff(&self, rho: f64, p: f64) -> f64 {
        match *self {
            Eos::IdealGas { gamma } => gamma,
            Eos::TaubMathews => {
                let eps = self.eps(rho, p);
                1.0 + p / (rho * eps)
            }
        }
    }

    /// Rest-mass density on the isentrope through `(rho_a, p_a)` at pressure
    /// `p`. Only meaningful for the ideal gas (`rho ∝ p^{1/Γ}`); used by the
    /// exact Riemann solver's rarefaction branch.
    ///
    /// # Panics
    /// Panics when called on a non-ideal EOS.
    #[inline]
    pub fn isentrope_rho(&self, rho_a: f64, p_a: f64, p: f64) -> f64 {
        match *self {
            Eos::IdealGas { gamma } => rho_a * (p / p_a).powf(1.0 / gamma),
            Eos::TaubMathews => {
                panic!("isentrope_rho is only defined for the ideal-gas EOS")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GAMMAS: [f64; 3] = [4.0 / 3.0, 1.4, 5.0 / 3.0];

    #[test]
    fn ideal_pressure_eps_roundtrip() {
        for &g in &GAMMAS {
            let eos = Eos::ideal(g);
            for &(rho, p) in &[(1.0, 1.0), (0.125, 0.1), (10.0, 1e-4), (1e-6, 1e3)] {
                let eps = eos.eps(rho, p);
                let p2 = eos.pressure(rho, eps);
                assert!((p2 - p).abs() <= 1e-12 * p, "g={g} rho={rho} p={p} -> {p2}");
            }
        }
    }

    #[test]
    fn tm_pressure_eps_roundtrip() {
        let eos = Eos::TaubMathews;
        for &(rho, p) in &[(1.0, 1.0), (0.125, 0.1), (10.0, 1e-6), (1e-4, 1e2)] {
            let eps = eos.eps(rho, p);
            let p2 = eos.pressure(rho, eps);
            assert!(
                (p2 - p).abs() <= 1e-11 * p.max(1e-300),
                "rho={rho} p={p} -> {p2}"
            );
        }
    }

    #[test]
    fn enthalpy_definition_consistent() {
        for eos in [Eos::ideal(1.4), Eos::TaubMathews] {
            for &(rho, p) in &[(1.0, 1.0), (0.5, 2.0), (3.0, 1e-3)] {
                let h = eos.enthalpy(rho, p);
                let h_def = 1.0 + eos.eps(rho, p) + p / rho;
                assert!((h - h_def).abs() <= 1e-12 * h, "{eos:?} rho={rho} p={p}");
            }
        }
    }

    #[test]
    fn sound_speed_subluminal_and_positive() {
        for eos in [
            Eos::ideal(4.0 / 3.0),
            Eos::ideal(5.0 / 3.0),
            Eos::TaubMathews,
        ] {
            // Sweep 12 decades of Θ.
            for k in -6..6 {
                let p = 10f64.powi(k);
                let cs2 = eos.sound_speed_sq(1.0, p);
                assert!(cs2 > 0.0 && cs2 < 1.0, "{eos:?} p={p} cs2={cs2}");
            }
        }
    }

    #[test]
    fn tm_limits_match_gamma_43_and_53() {
        let tm = Eos::TaubMathews;
        // Cold limit -> Γ_eff = 5/3; hot limit -> Γ_eff = 4/3.
        let cold = tm.gamma_eff(1.0, 1e-10);
        let hot = tm.gamma_eff(1.0, 1e10);
        assert!((cold - 5.0 / 3.0).abs() < 1e-6, "cold {cold}");
        assert!((hot - 4.0 / 3.0).abs() < 1e-6, "hot {hot}");
    }

    #[test]
    fn tm_sound_speed_limits() {
        let tm = Eos::TaubMathews;
        // Ultrarelativistic limit: cs² -> 1/3.
        let hot = tm.sound_speed_sq(1.0, 1e12);
        assert!((hot - 1.0 / 3.0).abs() < 1e-5, "hot cs2 {hot}");
        // Cold limit: cs² -> Γ Θ = (5/3)Θ -> matches ideal gas.
        let theta = 1e-8;
        let cold = tm.sound_speed_sq(1.0, theta);
        assert!(
            (cold / (5.0 / 3.0 * theta) - 1.0).abs() < 1e-3,
            "cold cs2 {cold}"
        );
    }

    #[test]
    fn isentrope_through_anchor() {
        let eos = Eos::ideal(1.4);
        assert!((eos.isentrope_rho(2.0, 3.0, 3.0) - 2.0).abs() < 1e-14);
        // rho grows with p along an isentrope.
        assert!(eos.isentrope_rho(2.0, 3.0, 6.0) > 2.0);
        assert!(eos.isentrope_rho(2.0, 3.0, 1.5) < 2.0);
    }

    #[test]
    #[should_panic]
    fn ideal_rejects_bad_gamma() {
        let _ = Eos::ideal(1.0);
    }

    #[test]
    #[should_panic]
    fn tm_isentrope_panics() {
        let _ = Eos::TaubMathews.isentrope_rho(1.0, 1.0, 2.0);
    }
}
