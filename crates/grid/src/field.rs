//! Multi-component field storage over a patch.

use crate::geom::PatchGeom;
use rhrsc_srhd::{Cons, NCOMP};

/// A dense, component-major field over a ghost-inclusive patch.
///
/// Layout: component `c` occupies a contiguous block of `geom.len()`
/// values with x fastest (`[c][k][j][i]`), so x-direction pencils are
/// contiguous slices and per-component kernels stream linearly through
/// memory.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    geom: PatchGeom,
    ncomp: usize,
    data: Vec<f64>,
}

impl Field {
    /// Allocate a zero-filled field with `ncomp` components.
    pub fn new(geom: PatchGeom, ncomp: usize) -> Self {
        Field {
            geom,
            ncomp,
            data: vec![0.0; ncomp * geom.len()],
        }
    }

    /// Allocate a conserved-variable field (five components).
    pub fn cons(geom: PatchGeom) -> Self {
        Field::new(geom, NCOMP)
    }

    /// Wrap an existing flat buffer (component-major) as a field. Used by
    /// the device backend to view staged device memory as a field without
    /// copying.
    ///
    /// # Panics
    /// Panics if `data.len() != ncomp * geom.len()`.
    pub fn from_vec(geom: PatchGeom, ncomp: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), ncomp * geom.len(), "buffer/geometry mismatch");
        Field { geom, ncomp, data }
    }

    /// Unwrap the field into its flat buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// The patch geometry.
    #[inline]
    pub fn geom(&self) -> &PatchGeom {
        &self.geom
    }

    /// Number of components.
    #[inline]
    pub fn ncomp(&self) -> usize {
        self.ncomp
    }

    /// Read one component at ghost-inclusive `(i, j, k)`.
    #[inline]
    pub fn at(&self, c: usize, i: usize, j: usize, k: usize) -> f64 {
        self.data[c * self.geom.len() + self.geom.idx(i, j, k)]
    }

    /// Write one component at ghost-inclusive `(i, j, k)`.
    #[inline]
    pub fn set(&mut self, c: usize, i: usize, j: usize, k: usize, v: f64) {
        let n = self.geom.len();
        self.data[c * n + self.geom.idx(i, j, k)] = v;
    }

    /// Read a conserved 5-vector at `(i, j, k)` (requires `ncomp >= 5`).
    #[inline]
    pub fn get_cons(&self, i: usize, j: usize, k: usize) -> Cons {
        debug_assert!(self.ncomp >= NCOMP);
        let n = self.geom.len();
        let ix = self.geom.idx(i, j, k);
        Cons::from_array([
            self.data[ix],
            self.data[n + ix],
            self.data[2 * n + ix],
            self.data[3 * n + ix],
            self.data[4 * n + ix],
        ])
    }

    /// Write a conserved 5-vector at `(i, j, k)`.
    #[inline]
    pub fn set_cons(&mut self, i: usize, j: usize, k: usize, u: Cons) {
        debug_assert!(self.ncomp >= NCOMP);
        let n = self.geom.len();
        let ix = self.geom.idx(i, j, k);
        let a = u.to_array();
        for (c, v) in a.into_iter().enumerate() {
            self.data[c * n + ix] = v;
        }
    }

    /// Full data slice of component `c`.
    #[inline]
    pub fn comp(&self, c: usize) -> &[f64] {
        let n = self.geom.len();
        &self.data[c * n..(c + 1) * n]
    }

    /// Mutable data slice of component `c`.
    #[inline]
    pub fn comp_mut(&mut self, c: usize) -> &mut [f64] {
        let n = self.geom.len();
        &mut self.data[c * n..(c + 1) * n]
    }

    /// Raw flat data (all components).
    #[inline]
    pub fn raw(&self) -> &[f64] {
        &self.data
    }

    /// Raw flat mutable data (all components).
    #[inline]
    pub fn raw_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Copy the values along an axis-aligned pencil of component `c` into
    /// `out`. The pencil runs over the full ghost-inclusive extent of
    /// dimension `dim`, at fixed transverse ghost-inclusive indices
    /// `(t1, t2)` (the remaining dims in ascending order).
    pub fn read_pencil(&self, c: usize, dim: usize, t1: usize, t2: usize, out: &mut [f64]) {
        let nt = self.geom.ntot(dim);
        debug_assert_eq!(out.len(), nt);
        match dim {
            0 => {
                let base = self.geom.idx(0, t1, t2) + c * self.geom.len();
                out.copy_from_slice(&self.data[base..base + nt]);
            }
            // The layout is affine in each index, so strided gathers walk
            // a constant step instead of recomputing the full index.
            1 => {
                let base = self.geom.idx(t1, 0, t2) + c * self.geom.len();
                let stride = self.geom.idx(t1, 1, t2) - self.geom.idx(t1, 0, t2);
                for (jj, o) in out.iter_mut().enumerate() {
                    *o = self.data[base + jj * stride];
                }
            }
            2 => {
                let base = self.geom.idx(t1, t2, 0) + c * self.geom.len();
                let stride = self.geom.idx(t1, t2, 1) - self.geom.idx(t1, t2, 0);
                for (kk, o) in out.iter_mut().enumerate() {
                    *o = self.data[base + kk * stride];
                }
            }
            _ => unreachable!(),
        }
    }

    /// Euclidean (L2) distance to another field over *interior* cells;
    /// used in equivalence tests between execution backends.
    pub fn interior_l2_distance(&self, other: &Field) -> f64 {
        assert_eq!(self.geom, other.geom);
        assert_eq!(self.ncomp, other.ncomp);
        let mut sum = 0.0;
        for (i, j, k) in self.geom.interior_iter() {
            for c in 0..self.ncomp {
                let d = self.at(c, i, j, k) - other.at(c, i, j, k);
                sum += d * d;
            }
        }
        sum.sqrt()
    }

    /// Sum of component `c` over interior cells times the cell volume
    /// (a conserved integral under periodic boundaries).
    pub fn interior_integral(&self, c: usize) -> f64 {
        let mut sum = 0.0;
        for (i, j, k) in self.geom.interior_iter() {
            sum += self.at(c, i, j, k);
        }
        sum * self.geom.cell_volume()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::PatchGeom;

    fn geom() -> PatchGeom {
        PatchGeom::cube([4, 3, 2], [0.0; 3], [1.0; 3], 2)
    }

    #[test]
    fn set_get_roundtrip() {
        let mut f = Field::new(geom(), 5);
        f.set(3, 1, 2, 3, 7.5);
        assert_eq!(f.at(3, 1, 2, 3), 7.5);
        assert_eq!(f.at(2, 1, 2, 3), 0.0);
    }

    #[test]
    fn cons_roundtrip() {
        let mut f = Field::cons(geom());
        let u = Cons::from_array([1.0, -2.0, 3.0, -4.0, 5.0]);
        f.set_cons(2, 2, 2, u);
        assert_eq!(f.get_cons(2, 2, 2), u);
    }

    #[test]
    fn component_slices_disjoint() {
        let mut f = Field::new(geom(), 3);
        f.comp_mut(1).fill(2.0);
        assert!(f.comp(0).iter().all(|&v| v == 0.0));
        assert!(f.comp(1).iter().all(|&v| v == 2.0));
        assert!(f.comp(2).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn x_pencil_matches_pointwise() {
        let g = geom();
        let mut f = Field::new(g, 2);
        for k in 0..g.ntot(2) {
            for j in 0..g.ntot(1) {
                for i in 0..g.ntot(0) {
                    f.set(1, i, j, k, (100 * i + 10 * j + k) as f64);
                }
            }
        }
        let mut buf = vec![0.0; g.ntot(0)];
        f.read_pencil(1, 0, 3, 1, &mut buf);
        for (i, &v) in buf.iter().enumerate() {
            assert_eq!(v, (100 * i + 30 + 1) as f64);
        }
    }

    #[test]
    fn y_and_z_pencils() {
        let g = geom();
        let mut f = Field::new(g, 1);
        for k in 0..g.ntot(2) {
            for j in 0..g.ntot(1) {
                for i in 0..g.ntot(0) {
                    f.set(0, i, j, k, (i + 10 * j + 100 * k) as f64);
                }
            }
        }
        let mut ybuf = vec![0.0; g.ntot(1)];
        f.read_pencil(0, 1, 2, 1, &mut ybuf); // fixed i=2, k=1
        for (j, &v) in ybuf.iter().enumerate() {
            assert_eq!(v, (2 + 10 * j + 100) as f64);
        }
        let mut zbuf = vec![0.0; g.ntot(2)];
        f.read_pencil(0, 2, 3, 4, &mut zbuf); // fixed i=3, j=4
        for (k, &v) in zbuf.iter().enumerate() {
            assert_eq!(v, (3 + 40 + 100 * k) as f64);
        }
    }

    #[test]
    fn l2_distance_zero_iff_equal_interior() {
        let g = geom();
        let mut a = Field::new(g, 1);
        let mut b = Field::new(g, 1);
        assert_eq!(a.interior_l2_distance(&b), 0.0);
        // Ghost differences don't count.
        b.set(0, 0, 0, 0, 9.0);
        assert_eq!(a.interior_l2_distance(&b), 0.0);
        // Interior differences do.
        a.set(0, 2, 2, 2, 3.0);
        assert!((a.interior_l2_distance(&b) - 3.0).abs() < 1e-15);
    }

    #[test]
    fn interior_integral_counts_only_interior() {
        let g = PatchGeom::line(10, 0.0, 1.0, 2);
        let mut f = Field::new(g, 1);
        f.comp_mut(0).fill(1.0);
        // 10 interior cells * dx=0.1 = 1.0 even though ghosts are 1 too.
        assert!((f.interior_integral(0) - 1.0).abs() < 1e-14);
    }
}
