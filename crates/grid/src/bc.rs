//! Physical boundary conditions on patch ghost zones.

use crate::field::Field;

/// Boundary condition on one face of the domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bc {
    /// Zeroth-order extrapolation (copy the nearest interior cell).
    Outflow,
    /// Wrap around to the opposite side of the patch.
    Periodic,
    /// Mirror the interior; the momentum component normal to the face
    /// flips sign.
    Reflect,
}

/// One [`Bc`] per face: `bcs[d][0]` is the low face of dimension `d`,
/// `bcs[d][1]` the high face.
pub type BcSet = [[Bc; 2]; 3];

/// A uniform boundary-condition set.
pub fn uniform(bc: Bc) -> BcSet {
    [[bc; 2]; 3]
}

/// Fill all ghost zones of a conserved-variable field.
///
/// The field is assumed to store `(D, S_x, S_y, S_z, τ, ...)`: under
/// [`Bc::Reflect`] on a face of dimension `d`, component `1 + d` flips
/// sign. Extra components beyond the first five are treated as scalars.
///
/// Ghosts are filled dimension-by-dimension in x, y, z order; corner ghost
/// regions therefore combine the adjacent face conditions, which is the
/// standard treatment for dimension-by-dimension finite-volume schemes.
pub fn fill_ghosts(f: &mut Field, bcs: &BcSet) {
    for (d, faces) in bcs.iter().enumerate() {
        for (side, &bc) in faces.iter().enumerate() {
            fill_face(f, d, side, bc);
        }
    }
}

/// Fill the ghost zones of a single face (dimension `d`, `side` 0 = low,
/// 1 = high). No-op for degenerate dimensions. Used directly by the
/// distributed driver, where only *physical* faces get boundary conditions
/// (interior faces receive halos from neighbor ranks instead).
///
/// Note that [`Bc::Periodic`] here wraps within the local patch; in
/// distributed runs periodic faces are handled by (possibly self-)
/// neighbor exchange unless the rank owns the full dimension.
pub fn fill_face(f: &mut Field, d: usize, side: usize, bc: Bc) {
    let geom = *f.geom();
    let ng = geom.ng_of(d);
    if ng == 0 {
        return;
    }
    {
        let n = geom.n[d];
        let ncomp = f.ncomp();
        // Transverse extents (full, ghost-inclusive, so corners inherit
        // previously-filled dims).
        let (t1_dim, t2_dim) = match d {
            0 => (1, 2),
            1 => (0, 2),
            _ => (0, 1),
        };
        let (nt1, nt2) = (geom.ntot(t1_dim), geom.ntot(t2_dim));

        let cell = |d_idx: usize, t1: usize, t2: usize| -> (usize, usize, usize) {
            match d {
                0 => (d_idx, t1, t2),
                1 => (t1, d_idx, t2),
                _ => (t1, t2, d_idx),
            }
        };

        {
            for g in 0..ng {
                // Ghost index and its source index along dimension d.
                let (gi, src) = if side == 0 {
                    let gi = ng - 1 - g;
                    let src = match bc {
                        Bc::Outflow => ng,
                        Bc::Periodic => gi + n,
                        Bc::Reflect => 2 * ng - 1 - gi,
                    };
                    (gi, src)
                } else {
                    let gi = ng + n + g;
                    let src = match bc {
                        Bc::Outflow => ng + n - 1,
                        Bc::Periodic => gi - n,
                        Bc::Reflect => 2 * (ng + n) - 1 - gi,
                    };
                    (gi, src)
                };
                for t2 in 0..nt2 {
                    for t1 in 0..nt1 {
                        let (gi0, gi1, gi2) = cell(gi, t1, t2);
                        let (si0, si1, si2) = cell(src, t1, t2);
                        for c in 0..ncomp {
                            let mut v = f.at(c, si0, si1, si2);
                            if bc == Bc::Reflect && c == 1 + d {
                                v = -v;
                            }
                            f.set(c, gi0, gi1, gi2, v);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::PatchGeom;

    fn line_field(n: usize, ng: usize) -> Field {
        let g = PatchGeom::line(n, 0.0, 1.0, ng);
        let mut f = Field::new(g, 5);
        for i in 0..n {
            for c in 0..5 {
                f.set(c, ng + i, 0, 0, (10 * c + i) as f64 + 1.0);
            }
        }
        f
    }

    #[test]
    fn outflow_copies_edge_cell() {
        let mut f = line_field(4, 2);
        fill_ghosts(&mut f, &uniform(Bc::Outflow));
        // Low ghosts copy first interior (value 1.0 for comp 0).
        assert_eq!(f.at(0, 0, 0, 0), 1.0);
        assert_eq!(f.at(0, 1, 0, 0), 1.0);
        // High ghosts copy last interior (value 4.0).
        assert_eq!(f.at(0, 6, 0, 0), 4.0);
        assert_eq!(f.at(0, 7, 0, 0), 4.0);
    }

    #[test]
    fn periodic_wraps() {
        let mut f = line_field(4, 2);
        fill_ghosts(&mut f, &uniform(Bc::Periodic));
        // ghost[1] (adjacent) = last interior; ghost[0] = second-to-last.
        assert_eq!(f.at(0, 1, 0, 0), 4.0);
        assert_eq!(f.at(0, 0, 0, 0), 3.0);
        assert_eq!(f.at(0, 6, 0, 0), 1.0);
        assert_eq!(f.at(0, 7, 0, 0), 2.0);
    }

    #[test]
    fn reflect_mirrors_and_flips_normal_momentum() {
        let mut f = line_field(4, 2);
        fill_ghosts(&mut f, &uniform(Bc::Reflect));
        // Scalar component mirrors: ghost adjacent = first interior.
        assert_eq!(f.at(0, 1, 0, 0), 1.0);
        assert_eq!(f.at(0, 0, 0, 0), 2.0);
        // S_x (component 1) flips sign at x faces.
        assert_eq!(f.at(1, 1, 0, 0), -11.0);
        assert_eq!(f.at(1, 0, 0, 0), -12.0);
        // S_y (component 2) does not flip at x faces.
        assert_eq!(f.at(2, 1, 0, 0), 21.0);
        // High side.
        assert_eq!(f.at(1, 6, 0, 0), -14.0);
    }

    #[test]
    fn mixed_faces() {
        let g = PatchGeom::line(4, 0.0, 1.0, 1);
        let mut f = Field::new(g, 5);
        for i in 0..4 {
            f.set(0, 1 + i, 0, 0, (i + 1) as f64);
        }
        let mut bcs = uniform(Bc::Outflow);
        bcs[0][1] = Bc::Periodic;
        fill_ghosts(&mut f, &bcs);
        assert_eq!(f.at(0, 0, 0, 0), 1.0); // outflow low
        assert_eq!(f.at(0, 5, 0, 0), 1.0); // periodic high wraps to first
    }

    #[test]
    fn two_d_reflect_flips_correct_component() {
        let g = PatchGeom::rect([3, 3], [0.0, 0.0], [1.0, 1.0], 1);
        let mut f = Field::new(g, 5);
        for (i, j, k) in g.interior_iter() {
            f.set(1, i, j, k, 5.0); // S_x
            f.set(2, i, j, k, 7.0); // S_y
        }
        fill_ghosts(&mut f, &uniform(Bc::Reflect));
        // y-face ghosts: S_y flips, S_x does not.
        assert_eq!(f.at(2, 2, 0, 0), -7.0);
        assert_eq!(f.at(1, 2, 0, 0), 5.0);
        // x-face ghosts: S_x flips, S_y does not.
        assert_eq!(f.at(1, 0, 2, 0), -5.0);
        assert_eq!(f.at(2, 0, 2, 0), 7.0);
    }

    #[test]
    fn periodic_2d_corner_consistency() {
        // After x then y fills, the corner ghost must equal the
        // diagonally-opposite interior cell.
        let g = PatchGeom::rect([4, 4], [0.0, 0.0], [1.0, 1.0], 2);
        let mut f = Field::new(g, 1);
        for (i, j, _k) in g.interior_iter() {
            f.set(0, i, j, 0, (10 * i + j) as f64);
        }
        fill_ghosts(&mut f, &uniform(Bc::Periodic));
        // Corner ghost (1,1) should equal interior (5,5).
        assert_eq!(f.at(0, 1, 1, 0), f.at(0, 5, 5, 0));
        assert_eq!(f.at(0, 0, 7, 0), f.at(0, 4, 3, 0));
    }

    #[test]
    fn degenerate_dims_untouched() {
        let mut f = line_field(4, 2);
        let before = f.clone();
        fill_ghosts(&mut f, &uniform(Bc::Periodic));
        // y/z have no ghosts; interior values unchanged.
        for i in 2..6 {
            assert_eq!(f.at(0, i, 0, 0), before.at(0, i, 0, 0));
        }
    }
}
