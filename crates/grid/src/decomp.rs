//! Cartesian block decomposition of a global grid over ranks.

/// A Cartesian process grid: `dims[d]` ranks along dimension `d`, with
/// optional periodic wrap-around per dimension. Rank `r` has coordinates
/// obtained by row-major decoding (x fastest).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CartDecomp {
    /// Ranks per dimension.
    pub dims: [usize; 3],
    /// Periodic topology per dimension.
    pub periodic: [bool; 3],
}

impl CartDecomp {
    /// A 1D decomposition along x.
    pub fn line(p: usize, periodic: bool) -> Self {
        CartDecomp {
            dims: [p, 1, 1],
            periodic: [periodic, false, false],
        }
    }

    /// Choose a process grid for `nranks` ranks over a global grid of
    /// extent `global_n`, greedily assigning factors to the dimension with
    /// the largest cells-per-rank extent (minimizes halo surface).
    pub fn auto(nranks: usize, global_n: [usize; 3], periodic: [bool; 3]) -> Self {
        assert!(nranks > 0);
        let mut dims = [1usize; 3];
        let mut rem = nranks;
        // Factor out primes smallest-first so the largest factors land last
        // (on the then-longest dimension).
        let mut factors = Vec::new();
        let mut f = 2;
        while rem > 1 {
            while rem.is_multiple_of(f) {
                factors.push(f);
                rem /= f;
            }
            f += 1;
        }
        factors.reverse(); // largest first
        for f in factors {
            // Give the factor to the dimension with the longest local extent.
            let mut best = 0;
            let mut best_len = 0.0f64;
            for d in 0..3 {
                let len = global_n[d] as f64 / dims[d] as f64;
                if len > best_len && global_n[d] / (dims[d] * f) >= 1 {
                    best_len = len;
                    best = d;
                }
            }
            dims[best] *= f;
        }
        CartDecomp { dims, periodic }
    }

    /// Total number of ranks.
    #[inline]
    pub fn nranks(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// Cartesian coordinates of `rank` (x fastest).
    #[inline]
    pub fn coords(&self, rank: usize) -> [usize; 3] {
        debug_assert!(rank < self.nranks());
        let x = rank % self.dims[0];
        let y = (rank / self.dims[0]) % self.dims[1];
        let z = rank / (self.dims[0] * self.dims[1]);
        [x, y, z]
    }

    /// Rank with the given Cartesian coordinates.
    #[inline]
    pub fn rank_of(&self, c: [usize; 3]) -> usize {
        debug_assert!(c[0] < self.dims[0] && c[1] < self.dims[1] && c[2] < self.dims[2]);
        (c[2] * self.dims[1] + c[1]) * self.dims[0] + c[0]
    }

    /// Face neighbor of `rank` in dimension `dim` on `side` (0 = low,
    /// 1 = high). `None` at a non-periodic domain boundary.
    pub fn neighbor(&self, rank: usize, dim: usize, side: usize) -> Option<usize> {
        let mut c = self.coords(rank);
        let p = self.dims[dim];
        if side == 0 {
            if c[dim] == 0 {
                if !self.periodic[dim] {
                    return None;
                }
                c[dim] = p - 1;
            } else {
                c[dim] -= 1;
            }
        } else if c[dim] + 1 == p {
            if !self.periodic[dim] {
                return None;
            }
            c[dim] = 0;
        } else {
            c[dim] += 1;
        }
        Some(self.rank_of(c))
    }

    /// Global cell offset and local extent of `rank`'s block for a global
    /// grid of extent `global_n`. Remainder cells go to the lowest-indexed
    /// blocks, so block sizes differ by at most one cell per dimension.
    pub fn local_span(&self, global_n: [usize; 3], rank: usize) -> ([usize; 3], [usize; 3]) {
        let c = self.coords(rank);
        let mut offset = [0usize; 3];
        let mut size = [0usize; 3];
        for d in 0..3 {
            let (p, n, i) = (self.dims[d], global_n[d], c[d]);
            assert!(n >= p, "dimension {d}: {n} cells over {p} ranks");
            let base = n / p;
            let rem = n % p;
            size[d] = base + usize::from(i < rem);
            offset[d] = i * base + i.min(rem);
        }
        (offset, size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_decomp_basics() {
        let d = CartDecomp::line(4, false);
        assert_eq!(d.nranks(), 4);
        assert_eq!(d.coords(2), [2, 0, 0]);
        assert_eq!(d.rank_of([3, 0, 0]), 3);
        assert_eq!(d.neighbor(0, 0, 0), None);
        assert_eq!(d.neighbor(0, 0, 1), Some(1));
        assert_eq!(d.neighbor(3, 0, 1), None);
    }

    #[test]
    fn periodic_wraps_neighbors() {
        let d = CartDecomp::line(4, true);
        assert_eq!(d.neighbor(0, 0, 0), Some(3));
        assert_eq!(d.neighbor(3, 0, 1), Some(0));
    }

    #[test]
    fn coords_rank_roundtrip() {
        let d = CartDecomp {
            dims: [3, 4, 2],
            periodic: [false; 3],
        };
        for r in 0..d.nranks() {
            assert_eq!(d.rank_of(d.coords(r)), r);
        }
    }

    #[test]
    fn spans_tile_the_global_grid() {
        let d = CartDecomp {
            dims: [3, 2, 1],
            periodic: [false; 3],
        };
        let n = [10, 7, 4];
        let mut covered = vec![false; n[0] * n[1] * n[2]];
        for r in 0..d.nranks() {
            let (off, size) = d.local_span(n, r);
            for k in 0..size[2] {
                for j in 0..size[1] {
                    for i in 0..size[0] {
                        let g = ((off[2] + k) * n[1] + off[1] + j) * n[0] + off[0] + i;
                        assert!(!covered[g], "overlap at rank {r}");
                        covered[g] = true;
                    }
                }
            }
        }
        assert!(covered.iter().all(|&c| c), "gaps in coverage");
    }

    #[test]
    fn remainder_blocks_differ_by_at_most_one() {
        let d = CartDecomp::line(3, false);
        let sizes: Vec<usize> = (0..3).map(|r| d.local_span([10, 1, 1], r).1[0]).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        let (mn, mx) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(mx - mn <= 1, "{sizes:?}");
    }

    #[test]
    fn auto_prefers_long_dimensions() {
        let d = CartDecomp::auto(8, [1024, 4, 1], [false; 3]);
        assert_eq!(d.nranks(), 8);
        // All factors should land on x (by far the longest).
        assert_eq!(d.dims, [8, 1, 1]);
    }

    #[test]
    fn auto_splits_square_evenly() {
        let d = CartDecomp::auto(16, [256, 256, 1], [true; 3]);
        assert_eq!(d.nranks(), 16);
        assert_eq!(d.dims[0] * d.dims[1], 16);
        // Should be a 4x4 split, not 16x1.
        assert_eq!(d.dims[0], 4);
        assert_eq!(d.dims[1], 4);
    }

    #[test]
    fn auto_handles_prime_counts() {
        let d = CartDecomp::auto(7, [128, 64, 1], [false; 3]);
        assert_eq!(d.nranks(), 7);
        assert_eq!(d.dims, [7, 1, 1]);
    }

    #[test]
    fn neighbor_relation_is_symmetric() {
        let d = CartDecomp {
            dims: [3, 3, 2],
            periodic: [true, false, true],
        };
        for r in 0..d.nranks() {
            for dim in 0..3 {
                for side in 0..2 {
                    if let Some(nb) = d.neighbor(r, dim, side) {
                        assert_eq!(
                            d.neighbor(nb, dim, 1 - side),
                            Some(r),
                            "r={r} dim={dim} side={side}"
                        );
                    }
                }
            }
        }
    }
}
