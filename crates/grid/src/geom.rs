//! Patch geometry: interior extent, ghost widths, physical coordinates.

/// Geometry of one rectangular, cell-centered patch.
///
/// A patch has `n[d]` interior cells in dimension `d` and `ng` ghost cells
/// on each side of every *active* dimension (one with `n[d] > 1`).
/// Degenerate dimensions (`n[d] == 1`, used to embed 1D/2D problems in the
/// 3D data structures) carry no ghosts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PatchGeom {
    /// Interior cell counts.
    pub n: [usize; 3],
    /// Ghost width on each side of active dimensions.
    pub ng: usize,
    /// Physical coordinate of the lower corner of interior cell (0,0,0).
    pub origin: [f64; 3],
    /// Cell spacing.
    pub dx: [f64; 3],
}

impl PatchGeom {
    /// A 1D patch spanning `[x0, x1]` with `nx` cells and `ng` ghosts.
    pub fn line(nx: usize, x0: f64, x1: f64, ng: usize) -> Self {
        assert!(nx > 0 && x1 > x0);
        PatchGeom {
            n: [nx, 1, 1],
            ng,
            origin: [x0, 0.0, 0.0],
            dx: [(x1 - x0) / nx as f64, 1.0, 1.0],
        }
    }

    /// A 2D patch spanning `[x0,x1] x [y0,y1]`.
    pub fn rect(n: [usize; 2], lo: [f64; 2], hi: [f64; 2], ng: usize) -> Self {
        assert!(n[0] > 0 && n[1] > 0);
        PatchGeom {
            n: [n[0], n[1], 1],
            ng,
            origin: [lo[0], lo[1], 0.0],
            dx: [
                (hi[0] - lo[0]) / n[0] as f64,
                (hi[1] - lo[1]) / n[1] as f64,
                1.0,
            ],
        }
    }

    /// A 3D patch spanning the box `[lo, hi]`.
    pub fn cube(n: [usize; 3], lo: [f64; 3], hi: [f64; 3], ng: usize) -> Self {
        PatchGeom {
            n,
            ng,
            origin: lo,
            dx: [
                (hi[0] - lo[0]) / n[0] as f64,
                (hi[1] - lo[1]) / n[1] as f64,
                (hi[2] - lo[2]) / n[2] as f64,
            ],
        }
    }

    /// Ghost width in dimension `d` (zero for degenerate dimensions).
    #[inline]
    pub fn ng_of(&self, d: usize) -> usize {
        if self.n[d] > 1 {
            self.ng
        } else {
            0
        }
    }

    /// `true` if dimension `d` is active (more than one cell).
    #[inline]
    pub fn active(&self, d: usize) -> bool {
        self.n[d] > 1
    }

    /// Number of active dimensions.
    pub fn ndim(&self) -> usize {
        (0..3).filter(|&d| self.active(d)).count()
    }

    /// Total (ghost-inclusive) extent in dimension `d`.
    #[inline]
    pub fn ntot(&self, d: usize) -> usize {
        self.n[d] + 2 * self.ng_of(d)
    }

    /// Total number of ghost-inclusive cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.ntot(0) * self.ntot(1) * self.ntot(2)
    }

    /// Number of interior cells.
    #[inline]
    pub fn interior_len(&self) -> usize {
        self.n[0] * self.n[1] * self.n[2]
    }

    /// `true` when the patch has no cells (never true for valid geometry).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat index of ghost-inclusive coordinates `(i, j, k)`.
    #[inline]
    pub fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.ntot(0) && j < self.ntot(1) && k < self.ntot(2));
        (k * self.ntot(1) + j) * self.ntot(0) + i
    }

    /// Physical coordinate of the center of the cell with ghost-inclusive
    /// indices `(i, j, k)`. Ghost cells extrapolate past the boundary.
    #[inline]
    pub fn center(&self, i: usize, j: usize, k: usize) -> [f64; 3] {
        let c = |d: usize, ii: usize| {
            self.origin[d] + ((ii as f64) - self.ng_of(d) as f64 + 0.5) * self.dx[d]
        };
        [c(0, i), c(1, j), c(2, k)]
    }

    /// Iterate ghost-inclusive index triples over the *interior* cells.
    pub fn interior_iter(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        let (g0, g1, g2) = (self.ng_of(0), self.ng_of(1), self.ng_of(2));
        let n = self.n;
        (0..n[2]).flat_map(move |k| {
            (0..n[1]).flat_map(move |j| (0..n[0]).map(move |i| (i + g0, j + g1, k + g2)))
        })
    }

    /// Cell volume.
    #[inline]
    pub fn cell_volume(&self) -> f64 {
        self.dx[0] * self.dx[1] * self.dx[2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_geometry() {
        let g = PatchGeom::line(10, 0.0, 1.0, 3);
        assert_eq!(g.ntot(0), 16);
        assert_eq!(g.ntot(1), 1); // degenerate dims carry no ghosts
        assert_eq!(g.ntot(2), 1);
        assert_eq!(g.len(), 16);
        assert_eq!(g.interior_len(), 10);
        assert_eq!(g.ndim(), 1);
        assert!((g.dx[0] - 0.1).abs() < 1e-15);
    }

    #[test]
    fn centers_line_up() {
        let g = PatchGeom::line(10, 0.0, 1.0, 2);
        // First interior cell center at x = dx/2.
        let c = g.center(2, 0, 0);
        assert!((c[0] - 0.05).abs() < 1e-15);
        // First ghost cell center at x = -3dx/2... index 0 is ng=2 to the left.
        let gc = g.center(0, 0, 0);
        assert!((gc[0] + 0.15).abs() < 1e-15);
        // Last interior center at 1 - dx/2.
        let lc = g.center(11, 0, 0);
        assert!((lc[0] - 0.95).abs() < 1e-15);
    }

    #[test]
    fn idx_is_bijective_on_patch() {
        let g = PatchGeom::cube([4, 3, 2], [0.0; 3], [1.0; 3], 2);
        let mut seen = vec![false; g.len()];
        for k in 0..g.ntot(2) {
            for j in 0..g.ntot(1) {
                for i in 0..g.ntot(0) {
                    let ix = g.idx(i, j, k);
                    assert!(!seen[ix], "collision at ({i},{j},{k})");
                    seen[ix] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn interior_iter_covers_interior_exactly() {
        let g = PatchGeom::rect([3, 4], [0.0, 0.0], [1.0, 1.0], 2);
        let cells: Vec<_> = g.interior_iter().collect();
        assert_eq!(cells.len(), 12);
        for &(i, j, k) in &cells {
            assert!((2..5).contains(&i));
            assert!((2..6).contains(&j));
            assert_eq!(k, 0);
        }
    }

    #[test]
    fn cube_volume() {
        let g = PatchGeom::cube([10, 20, 40], [0.0; 3], [1.0, 1.0, 2.0], 2);
        assert!((g.cell_volume() - 0.1 * 0.05 * 0.05).abs() < 1e-15);
        assert_eq!(g.ndim(), 3);
    }
}
