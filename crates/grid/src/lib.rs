//! Structured grids for the HRSC solver.
//!
//! * [`geom`] — rectangular cell-centered patch geometry with per-dimension
//!   ghost widths (unused dimensions carry no ghosts),
//! * [`field`] — multi-component field storage over a patch,
//! * [`bc`] — physical boundary conditions (outflow, periodic, reflecting),
//! * [`decomp`] — Cartesian block decomposition of a global grid over
//!   ranks, with face-neighbor topology for halo exchange.

pub mod bc;
pub mod decomp;
pub mod field;
pub mod geom;

pub use bc::{fill_face, fill_ghosts, Bc, BcSet};
pub use decomp::CartDecomp;
pub use field::Field;
pub use geom::PatchGeom;
