//! Ranks, tagged messaging, collectives, and the liveness layer.
//!
//! Beyond the basic MPI-like substrate, every rank carries a *liveness
//! layer* for rank-level failure tolerance:
//!
//! * every envelope piggy-backs a heartbeat sequence number, so any
//!   message from a peer doubles as proof of life;
//! * [`Rank::recv_deadline`] bounds how long a receive can block and
//!   returns [`CommError::PeerSuspect`] instead of hanging on a dead
//!   peer — collectives use the same deadline internally;
//! * halo payloads carry a CRC-32 trailer; damage is detected at receive
//!   time (before any unpack) and repaired by a modeled link-level
//!   retransmit with bounded exponential backoff, escalating to the
//!   caller after [`NetworkModel::crc_retry_attempts`] attempts;
//! * [`Rank::suspicion_consensus`] turns per-rank suspicion bitmasks into
//!   a *confirmed dead set* shared by the responsive ranks, bumping the
//!   communication epoch so stale traffic from evicted ranks is dropped.

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use rhrsc_runtime::fault::{FaultInjector, FaultPlan, FaultStats};
use rhrsc_runtime::metrics::Registry;
use rhrsc_runtime::trace::{Tracer, Track};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tags at or above this value are reserved for collectives.
const RESERVED_TAG_BASE: u64 = 1 << 62;

/// Fault injection applies only to tags below this limit (the halo-traffic
/// tag space). Collectives and gathers stay reliable: they carry control
/// decisions — Δt agreement, error coordination — whose loss the recovery
/// protocol itself depends on, mirroring how real resilience layers run
/// their control plane over a reliable transport.
const FAULT_TAG_LIMIT: u64 = 64;

/// Classify a tag for metrics: halo traffic, point-to-point data (gathers,
/// restarts), or collectives (the reserved tag space).
fn tag_class(tag: u64) -> &'static str {
    if tag >= RESERVED_TAG_BASE {
        "collective"
    } else if tag < FAULT_TAG_LIMIT {
        "halo"
    } else {
        "data"
    }
}

/// Scalar agreement value signaling "a peer is suspected dead" (see
/// [`Rank::agree_max`]); ordinary success/failure flags use 0.0/1.0.
pub const SUSPECT_FLAG: f64 = 2.0;

/// Distributed-AMR tag blocks. The uniform block solver uses halo tags
/// `0..6`; the distributed AMR driver claims the rest of the
/// fault-injected halo tag space (`< 64`), one tag per refinement level
/// per exchange class, so that cross-rank prolongation, reflux-register,
/// and regrid traffic rides the same CRC-32 trailer + modeled-retransmit
/// path as block halos (a corrupted AMR message is detected and resent,
/// never silently accepted).
pub const AMR_DESCEND_TAG_BASE: u64 = 8;
/// First tag of the distributed-AMR reflux-register exchange block.
pub const AMR_REFLUX_TAG_BASE: u64 = 16;
/// First tag of the distributed-AMR sync-point exchange block.
pub const AMR_SYNC_TAG_BASE: u64 = 24;
/// Tag of the distributed-AMR regrid allgather (still halo class).
pub const AMR_REGRID_TAG: u64 = 32;

/// Diskless-checkpoint tag block. These carry frozen snapshot buffers
/// between buddy ranks and ride the *data* class (`>= 64`): the payloads
/// are FNV-stamped end to end by the snapshot layer itself, so the
/// halo-class CRC trailer + retransmit machinery would only duplicate
/// that armor (and fault-injected truncation of a checkpoint replica is a
/// scrub-layer concern, not a link-layer one).
///
/// Tag of the steady-state buddy replica exchange (each rank ships its
/// freshly captured local snapshot to its guardian).
pub const BUDDY_CKP_TAG: u64 = 1100;
/// Tag on which a guardian ships a replica back to a rank (or a shrink
/// root) that lost its own tiers.
pub const BUDDY_RESTORE_TAG: u64 = 1101;
/// Tag of the shrink-path replica collection and redistribution (buddy
/// restore of *dead* ranks' state onto the survivor decomposition).
pub const BUDDY_SHRINK_TAG: u64 = 1102;

/// Tag of the cadenced telemetry reduction: every rank's delta sample
/// rides to block rank 0 on this tag so a run carries one global time
/// series. Data class (reliable, never fault-injected): telemetry must
/// observe faults, not suffer them — and the point-to-point sends touch
/// neither the collective op counter nor the solver state, so arming
/// telemetry leaves the computed fields bit-identical.
pub const TELEMETRY_TAG: u64 = 1200;

/// Errors from the deadline-aware receive paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommError {
    /// The peer did not produce the expected message within the deadline
    /// and is now suspected dead (recorded in this rank's suspicion mask).
    PeerSuspect {
        /// The silent peer.
        rank: usize,
        /// How long this rank waited before giving up.
        waited: Duration,
    },
    /// A halo payload failed its CRC-32 trailer even after the modeled
    /// link-level retransmits — the damage escalates to the caller.
    CorruptPayload {
        /// Sending rank.
        from: usize,
        /// Message tag.
        tag: u64,
    },
    /// A newer communication epoch was observed: the surviving ranks have
    /// shrunk the universe without this rank, which must now exit.
    Evicted {
        /// The epoch the survivors are on.
        epoch: u64,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::PeerSuspect { rank, waited } => {
                write!(f, "rank {rank} silent for {waited:?}; suspected dead")
            }
            CommError::CorruptPayload { from, tag } => {
                write!(f, "corrupt payload from rank {from} tag {tag}")
            }
            CommError::Evicted { epoch } => {
                write!(f, "evicted: survivors advanced to epoch {epoch}")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// Counters of the liveness layer, per rank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LivenessStats {
    /// Receive deadlines that expired (peer suspected dead).
    pub suspicions: u64,
    /// Suspicions retracted because the peer was heard from again.
    pub false_positives: u64,
    /// Modeled link-level retransmits of CRC-damaged halo payloads.
    pub crc_retries: u64,
    /// Payloads still damaged after the bounded retransmits (escalated).
    pub crc_escalations: u64,
    /// Peers promoted from suspected to confirmed dead by consensus.
    pub confirmed_dead: u64,
    /// Messages dropped for carrying a stale (pre-shrink) epoch.
    pub stale_dropped: u64,
}

/// Cost model of the simulated interconnect.
#[derive(Debug, Clone, Copy)]
pub struct NetworkModel {
    /// Per-message latency.
    pub latency: Duration,
    /// Link bandwidth in bytes/second (`f64::INFINITY` = free).
    pub bandwidth: f64,
    /// How long a deadline-aware receive waits before suspecting the
    /// peer dead. Wall-clock even in virtual-time mode (a dead rank sends
    /// nothing physically). Overridable via `RHRSC_SUSPECT_AFTER_MS`.
    pub suspect_after: Duration,
    /// Modeled link-level retransmit attempts for a halo payload whose
    /// CRC-32 trailer fails at receive time (0 disables the retry tier:
    /// damage escalates to the caller immediately, the pre-liveness
    /// behavior).
    pub crc_retry_attempts: u32,
    /// Base backoff charged per retransmit attempt (doubles each try).
    pub crc_retry_backoff: Duration,
    /// Virtual-time mode: network costs are charged to the ranks'
    /// *virtual clocks* instead of being physically waited out, and
    /// compute sections measured with [`Rank::work`] are serialized on a
    /// CPU token so their timings are honest on an oversubscribed host.
    /// This turns the rank universe into a discrete-event simulation of a
    /// cluster — the mechanism behind the scaling experiments on a
    /// single-core machine (see DESIGN.md).
    pub virtual_time: bool,
}

/// Default suspicion deadline: `RHRSC_SUSPECT_AFTER_MS` or 2000 ms. Long
/// enough that an oversubscribed host never starves a healthy peer past
/// it, short enough that benches detect a dead rank promptly.
fn default_suspect_after() -> Duration {
    let ms = std::env::var("RHRSC_SUSPECT_AFTER_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(2000);
    Duration::from_millis(ms.max(1))
}

impl NetworkModel {
    /// An ideal (zero-cost) network.
    pub fn ideal() -> Self {
        NetworkModel {
            latency: Duration::ZERO,
            bandwidth: f64::INFINITY,
            virtual_time: false,
            suspect_after: default_suspect_after(),
            crc_retry_attempts: 0,
            crc_retry_backoff: Duration::from_micros(50),
        }
    }

    /// A network with the given latency and infinite bandwidth.
    pub fn with_latency(latency: Duration) -> Self {
        NetworkModel {
            latency,
            ..NetworkModel::ideal()
        }
    }

    /// A virtual-time network with the given latency and bandwidth.
    pub fn virtual_cluster(latency: Duration, bandwidth: f64) -> Self {
        NetworkModel {
            latency,
            bandwidth,
            virtual_time: true,
            ..NetworkModel::ideal()
        }
    }

    /// Enable the modeled link-level retransmit tier: CRC-damaged halo
    /// payloads are retried up to `attempts` times with exponential
    /// backoff before the damage escalates to the caller.
    pub fn with_crc_retries(mut self, attempts: u32) -> Self {
        self.crc_retry_attempts = attempts;
        self
    }

    /// Set the receive deadline after which a silent peer is suspected.
    pub fn with_suspect_after(mut self, d: Duration) -> Self {
        self.suspect_after = d;
        self
    }

    /// Network cost of a message of `len` doubles, in seconds.
    fn cost_secs(&self, len: usize) -> f64 {
        let mut t = self.latency.as_secs_f64();
        if self.bandwidth.is_finite() && self.bandwidth > 0.0 {
            let bytes = (len * std::mem::size_of::<f64>()) as f64;
            t += bytes / self.bandwidth;
        }
        t
    }

    /// Earliest delivery instant for a message of `len` doubles sent now.
    fn deliverable_at(&self, len: usize) -> Instant {
        Instant::now() + Duration::from_secs_f64(self.cost_secs(len))
    }
}

/// Table-driven CRC-32 (IEEE polynomial), built at compile time. The
/// slow bitwise variant in `rhrsc-io` is fine for checkpoint files; this
/// one runs on every halo payload, so it must be cheap.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 over the little-endian bytes of an `f64` payload.
fn crc32_f64s(data: &[f64]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for x in data {
        for b in x.to_le_bytes() {
            c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
    }
    !c
}

struct Envelope {
    from: usize,
    tag: u64,
    data: Vec<f64>,
    deliverable_at: Instant,
    /// Virtual delivery time: sender's virtual clock at send plus the
    /// modeled network cost.
    v_deliver: f64,
    /// Piggy-backed heartbeat: the sender's running send count. Every
    /// message doubles as proof of life.
    seq: u64,
    /// Sender's communication epoch (bumped by each shrink).
    epoch: u64,
    /// CRC-32 trailer over `data`; present on halo-tag payloads.
    crc: Option<u32>,
}

/// Binary CPU token shared by a virtual-time universe: compute sections
/// run one-at-a-time so wall-clock measurements equal CPU time even when
/// ranks outnumber cores.
pub(crate) struct CpuToken {
    busy: parking_lot::Mutex<bool>,
    cv: parking_lot::Condvar,
}

impl CpuToken {
    pub(crate) fn new() -> Self {
        CpuToken {
            busy: parking_lot::Mutex::new(false),
            cv: parking_lot::Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut b = self.busy.lock();
        while *b {
            self.cv.wait(&mut b);
        }
        *b = true;
    }

    fn release(&self) {
        let mut b = self.busy.lock();
        *b = false;
        self.cv.notify_one();
    }
}

/// Per-rank communicator handle.
///
/// Methods take `&mut self`: each rank is single-threaded with respect to
/// communication, like an MPI rank.
pub struct Rank {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Envelope>>,
    receiver: Receiver<Envelope>,
    model: NetworkModel,
    /// Arrived-but-unmatched messages (out-of-order tag matching).
    stash: Vec<Envelope>,
    /// Collective op counter (advances identically on every rank).
    op_counter: u64,
    /// Bytes sent, for communication-volume accounting.
    bytes_sent: u64,
    /// Virtual clock (seconds); only meaningful in virtual-time mode.
    vtime: f64,
    /// Shared CPU token for virtual-time compute sections.
    cpu: std::sync::Arc<CpuToken>,
    /// Optional fault injector for halo-tag traffic (see
    /// [`run_with_faults`]).
    injector: Option<Arc<FaultInjector>>,
    /// Optional metrics registry: per-tag-class message/byte counters and
    /// receive-wait histograms (see [`Rank::set_metrics`]).
    metrics: Option<Arc<Registry>>,
    /// Optional flight recorder: the shared tracer plus this rank's main
    /// timeline track (see [`Rank::set_trace`]).
    trace: Option<(Arc<Tracer>, Arc<Track>)>,
    /// Heartbeat sequence of this rank's own sends.
    send_seq: u64,
    /// Communication epoch: bumped on every shrink. Stale-epoch messages
    /// are dropped; observing a newer epoch means this rank was evicted.
    epoch: u64,
    /// Latest heartbeat sequence seen from each peer.
    peer_seq: Vec<u64>,
    /// Bitmask of peers that missed a receive deadline (unconfirmed).
    suspected: u64,
    /// Bitmask of peers confirmed dead by [`Rank::suspicion_consensus`].
    dead: u64,
    /// Cached live (not confirmed-dead) rank ids, ascending.
    live: Vec<usize>,
    /// Liveness-layer counters.
    lstats: LivenessStats,
    /// Set when a newer epoch is observed: the survivors shrank the
    /// universe without this rank, which must stop participating.
    evicted: Option<u64>,
}

impl Rank {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Total payload bytes sent by this rank.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// This rank's virtual clock, in seconds (virtual-time mode).
    pub fn vtime(&self) -> f64 {
        self.vtime
    }

    /// `true` when the universe runs in virtual-time mode.
    pub fn is_virtual(&self) -> bool {
        self.model.virtual_time
    }

    /// Attach a metrics registry. Sends then bump `comm.msgs.<class>` /
    /// `comm.bytes.<class>` counters and receives record their blocking
    /// time into `sub.comm.wait.<class>` histograms, where `<class>` is
    /// `halo`, `data` or `collective` by tag range. In virtual-time mode
    /// the wait is the virtual-clock jump; otherwise wall-clock time.
    pub fn set_metrics(&mut self, metrics: Arc<Registry>) {
        self.metrics = Some(metrics);
    }

    /// Attach a flight recorder. This rank records onto track
    /// `(pid = rank, tid = 0)`: halo sends as `hb.send` heartbeat
    /// instants, liveness transitions (`liveness.suspect` / `.retract` /
    /// `.crc_retransmit` / `.crc_escalation` / `.stale_drop` /
    /// `.evict`), and each suspicion-consensus round as a
    /// `liveness.consensus` span. Timestamps follow the same clock
    /// convention as the metrics: virtual nanoseconds in virtual-time
    /// universes, wall time since the trace epoch otherwise.
    /// Instrumentation never changes the numbers or the message pattern.
    pub fn set_trace(&mut self, tracer: Arc<Tracer>) {
        let track = tracer.track(self.rank as u32, 0, "main");
        self.trace = Some((tracer, track));
    }

    /// `true` when a flight recorder is attached.
    pub fn has_trace(&self) -> bool {
        self.trace.is_some()
    }

    /// The attached flight recorder, if any.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.trace.as_ref().map(|(t, _)| t)
    }

    /// The rank's virtual clock when in virtual-time mode (the trace
    /// timestamp source), `None` under wall clocks.
    fn vt(&self) -> Option<f64> {
        self.model.virtual_time.then_some(self.vtime)
    }

    /// Record an instant event on this rank's trace track, if attached.
    pub fn trace_instant(&self, name: &'static str, arg: f64) {
        if let Some((tracer, track)) = &self.trace {
            track.instant(name, tracer.stamp(self.vt()), arg);
        }
    }

    /// Record a counter sample on this rank's trace track, if attached.
    pub fn trace_counter(&self, name: &'static str, value: f64) {
        if let Some((tracer, track)) = &self.trace {
            track.counter(name, tracer.stamp(self.vt()), value);
        }
    }

    /// Record a span that ends "now" and lasted `dur_ns` on this rank's
    /// trace track, if attached (the caller measured the duration with
    /// the same virtual/wall clock convention).
    pub fn trace_span(&self, name: &'static str, dur_ns: u64) {
        self.trace_span_arg(name, dur_ns, 0.0);
    }

    /// [`Rank::trace_span`] with an annotation payload.
    pub fn trace_span_arg(&self, name: &'static str, dur_ns: u64, arg: f64) {
        if let Some((tracer, track)) = &self.trace {
            let t1 = tracer.stamp(self.vt());
            track.span_arg(name, t1.saturating_sub(dur_ns), t1, arg);
        }
    }

    /// Execute a compute section and charge its cost to this rank's
    /// virtual clock. In virtual-time mode the section runs while holding
    /// the universe's CPU token, so its wall-clock measurement equals CPU
    /// time even with many ranks time-sharing few cores. Outside
    /// virtual-time mode this just runs `f`.
    pub fn work<T>(&mut self, f: impl FnOnce() -> T) -> T {
        if !self.model.virtual_time {
            return f();
        }
        self.cpu.acquire();
        let t0 = Instant::now();
        let out = f();
        let secs = t0.elapsed().as_secs_f64();
        self.cpu.release();
        self.vtime += secs;
        out
    }

    /// Charge `secs` of modeled work to the virtual clock without running
    /// anything (used to model known-cost phases, e.g. accelerator
    /// kernels whose throughput differs from the host's).
    pub fn advance_vtime(&mut self, secs: f64) {
        self.vtime += secs;
    }

    /// This rank's fault injector, if the universe was started with
    /// [`run_with_faults`] and an active plan.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.injector.as_ref()
    }

    /// Counters of faults injected on this rank so far.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.injector.as_ref().map(|i| i.stats())
    }

    /// Counters of the liveness layer on this rank.
    pub fn liveness_stats(&self) -> LivenessStats {
        self.lstats
    }

    /// Ranks not confirmed dead, ascending. Always contains this rank.
    pub fn live_ranks(&self) -> &[usize] {
        &self.live
    }

    /// Bitmask of ranks confirmed dead by consensus.
    pub fn dead_mask(&self) -> u64 {
        self.dead
    }

    /// Bitmask of ranks currently suspected (deadline missed, not yet
    /// confirmed by consensus).
    pub fn suspected_mask(&self) -> u64 {
        self.suspected & !self.dead
    }

    /// Current communication epoch (number of shrinks survived).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// `Some(epoch)` if a newer epoch was observed: the surviving ranks
    /// shrank the universe without this rank.
    pub fn evicted(&self) -> Option<u64> {
        self.evicted
    }

    /// Latest piggy-backed heartbeat sequence seen from `peer`.
    pub fn peer_heartbeat(&self, peer: usize) -> u64 {
        self.peer_seq[peer]
    }

    /// Eagerly send `data` to rank `to` with `tag`. Never blocks; the
    /// network cost is charged to the *receiver* as a delivery timestamp.
    /// Halo-tag payloads always carry a CRC-32 trailer. Under an active
    /// fault plan they may additionally be delayed or damaged in flight;
    /// damage is repaired by a modeled link-level retransmit (bounded
    /// exponential backoff, [`NetworkModel::crc_retry_attempts`] tries)
    /// before the truncated payload — still carrying the original CRC, so
    /// the receiver detects the mismatch — escalates to the caller.
    pub fn send(&mut self, to: usize, tag: u64, data: &[f64]) {
        assert!(tag < RESERVED_TAG_BASE, "tag {tag} is reserved");
        if tag >= FAULT_TAG_LIMIT {
            self.send_impl(to, tag, data, Duration::ZERO, None);
            return;
        }
        let crc = Some(crc32_f64s(data));
        let Some(inj) = self.injector.clone() else {
            self.send_impl(to, tag, data, Duration::ZERO, crc);
            return;
        };
        let mut extra = inj.should_delay_msg().unwrap_or(Duration::ZERO);
        if inj.should_truncate_msg() && !data.is_empty() {
            // Modeled link-level retransmit: each attempt pays an
            // exponentially growing backoff (charged as extra flight
            // time) and redraws the damage from its own fault site.
            let mut corrupted = true;
            let mut attempt = 0u32;
            while corrupted && attempt < self.model.crc_retry_attempts {
                extra += self.model.crc_retry_backoff * (1u32 << attempt.min(20));
                attempt += 1;
                self.lstats.crc_retries += 1;
                if let Some(m) = &self.metrics {
                    m.counter("comm.liveness.crc_retries").inc();
                }
                self.trace_instant("liveness.crc_retransmit", attempt as f64);
                corrupted = inj.should_corrupt_retry();
            }
            if corrupted {
                // Deterministic truncation: drop the trailing half. The
                // CRC trailer is of the *original* payload, so the
                // receiver detects the damage before unpacking.
                let keep = data.len() / 2;
                let short = data[..keep].to_vec();
                self.send_impl(to, tag, &short, extra, crc);
                return;
            }
        }
        self.send_impl(to, tag, data, extra, crc);
    }

    fn send_raw(&mut self, to: usize, tag: u64, data: &[f64]) {
        self.send_impl(to, tag, data, Duration::ZERO, None);
    }

    fn send_impl(&mut self, to: usize, tag: u64, data: &[f64], extra: Duration, crc: Option<u32>) {
        assert!(to < self.size, "send to invalid rank {to}");
        assert_ne!(to, self.rank, "self-send is not supported");
        self.bytes_sent += std::mem::size_of_val(data) as u64;
        if let Some(m) = &self.metrics {
            let class = tag_class(tag);
            m.counter(&format!("comm.msgs.{class}")).inc();
            m.counter(&format!("comm.bytes.{class}"))
                .add(std::mem::size_of_val(data) as u64);
        }
        self.send_seq += 1;
        // Halo sends double as heartbeats: record them so a victim's
        // *last* heartbeat is visible on the flight-recorder timeline.
        if tag < FAULT_TAG_LIMIT {
            self.trace_instant("hb.send", self.send_seq as f64);
        }
        let env = Envelope {
            from: self.rank,
            tag,
            data: data.to_vec(),
            deliverable_at: if self.model.virtual_time {
                // No physical wait in virtual mode.
                Instant::now()
            } else {
                self.model.deliverable_at(data.len()) + extra
            },
            v_deliver: self.vtime + self.model.cost_secs(data.len()) + extra.as_secs_f64(),
            seq: self.send_seq,
            epoch: self.epoch,
            crc,
        };
        // A crashed rank's mailbox may outlive its closure (or be gone
        // entirely); sending to it must never bring a survivor down.
        let _ = self.senders[to].send(env);
    }

    /// Blocking receive of the message from `from` with `tag`. Messages
    /// from other sources/tags that arrive first are stashed and matched
    /// by later receives (MPI-style tag matching; messages from one sender
    /// with one tag are delivered in order).
    pub fn recv(&mut self, from: usize, tag: u64) -> Vec<f64> {
        assert!(tag < RESERVED_TAG_BASE, "tag {tag} is reserved");
        self.recv_raw(from, tag)
    }

    fn recv_raw(&mut self, from: usize, tag: u64) -> Vec<f64> {
        // Only pay for clock reads when a registry is attached.
        let wait_start = self.metrics.as_ref().map(|_| (Instant::now(), self.vtime));
        let data = self.recv_raw_inner(from, tag);
        if let (Some(m), Some((t0, v0))) = (&self.metrics, wait_start) {
            let ns = if self.model.virtual_time {
                ((self.vtime - v0).max(0.0) * 1e9) as u64
            } else {
                t0.elapsed().as_nanos() as u64
            };
            m.histogram(&format!("sub.comm.wait.{}", tag_class(tag)))
                .record(ns);
        }
        data
    }

    fn recv_raw_inner(&mut self, from: usize, tag: u64) -> Vec<f64> {
        // Check the stash first.
        if let Some(pos) = self
            .stash
            .iter()
            .position(|e| e.from == from && e.tag == tag)
        {
            let env = self.stash.remove(pos);
            return self.deliver(env);
        }
        loop {
            let env = self.receiver.recv().expect("rank channel closed");
            let Some(env) = self.admit(env) else { continue };
            if env.from == from && env.tag == tag {
                return self.deliver(env);
            }
            self.stash.push(env);
        }
    }

    /// Epoch filter + heartbeat bookkeeping for an arrived envelope.
    /// Returns `None` if the message must be dropped (stale epoch: the
    /// sender was evicted before it sent this). A *newer* epoch is
    /// admitted — it means the sender finished a consensus round first
    /// and still counts this rank among the living; op tags keep the
    /// cross-epoch messages matched to the right collective. Eviction is
    /// only ever decided by [`Rank::suspicion_consensus`] itself.
    fn admit(&mut self, env: Envelope) -> Option<Envelope> {
        if env.epoch < self.epoch {
            self.lstats.stale_dropped += 1;
            if let Some(m) = &self.metrics {
                m.counter("comm.liveness.stale_dropped").inc();
            }
            self.trace_instant("liveness.stale_drop", env.from as f64);
            return None;
        }
        self.note_arrival(env.from, env.seq);
        Some(env)
    }

    /// Any message is proof of life: update the peer's heartbeat and
    /// retract a standing suspicion (counted as a false positive).
    fn note_arrival(&mut self, from: usize, seq: u64) {
        if seq > self.peer_seq[from] {
            self.peer_seq[from] = seq;
        }
        let bit = 1u64 << from;
        if self.suspected & bit != 0 {
            self.suspected &= !bit;
            self.lstats.false_positives += 1;
            if let Some(m) = &self.metrics {
                m.counter("comm.liveness.false_positives").inc();
            }
            self.trace_instant("liveness.retract", from as f64);
        }
    }

    /// Record a missed deadline for `peer` and build the matching error.
    /// In virtual-time mode the (wall-clock) detection latency is charged
    /// to the virtual clock, so suspicion is never free.
    fn mark_suspect(&mut self, peer: usize, waited: Duration) -> CommError {
        let bit = 1u64 << peer;
        if self.dead & bit == 0 && self.suspected & bit == 0 {
            self.suspected |= bit;
            self.lstats.suspicions += 1;
            if let Some(m) = &self.metrics {
                m.counter("comm.liveness.suspicions").inc();
            }
            self.trace_instant("liveness.suspect", peer as f64);
        }
        if self.model.virtual_time {
            self.vtime += waited.as_secs_f64();
        }
        CommError::PeerSuspect { rank: peer, waited }
    }

    /// Verify the CRC-32 trailer, counting an escalation on mismatch.
    fn payload_intact(&mut self, env: &Envelope) -> bool {
        let ok = env.crc.is_none_or(|c| crc32_f64s(&env.data) == c);
        if !ok {
            self.lstats.crc_escalations += 1;
            if let Some(m) = &self.metrics {
                m.counter("comm.liveness.crc_escalations").inc();
            }
            self.trace_instant("liveness.crc_escalation", env.from as f64);
        }
        ok
    }

    /// Charge the message's arrival to the appropriate clock and hand the
    /// payload over. Damage is counted ([`LivenessStats::crc_escalations`])
    /// but still delivered — the legacy path detects truncation by length.
    fn deliver(&mut self, env: Envelope) -> Vec<f64> {
        self.payload_intact(&env);
        self.settle(&env);
        env.data
    }

    /// Like [`Rank::deliver`], but damage becomes a typed error.
    fn deliver_checked(&mut self, env: Envelope) -> Result<Vec<f64>, CommError> {
        let intact = self.payload_intact(&env);
        self.settle(&env);
        if intact {
            Ok(env.data)
        } else {
            Err(CommError::CorruptPayload {
                from: env.from,
                tag: env.tag,
            })
        }
    }

    fn settle(&mut self, env: &Envelope) {
        if self.model.virtual_time {
            // A receive completes no earlier than the message's virtual
            // delivery time; waiting is free (the rank was blocked).
            self.vtime = self.vtime.max(env.v_deliver);
        } else {
            wait_until(env.deliverable_at);
        }
    }

    /// Deadline-aware receive: like [`Rank::recv`], but gives up after
    /// [`NetworkModel::suspect_after`] and returns
    /// [`CommError::PeerSuspect`] instead of blocking forever on a dead
    /// peer. A CRC-damaged payload returns [`CommError::CorruptPayload`];
    /// observing a newer epoch returns [`CommError::Evicted`]. Receives
    /// from a *confirmed-dead* peer fail fast; merely-suspected peers
    /// still get the full deadline — deliberately, so every live rank
    /// pays the same wait for a given silent peer and deadline-induced
    /// skew cannot cascade into false suspicions of healthy ranks.
    pub fn recv_deadline(&mut self, from: usize, tag: u64) -> Result<Vec<f64>, CommError> {
        assert!(tag < RESERVED_TAG_BASE, "tag {tag} is reserved");
        let wait_start = self.metrics.as_ref().map(|_| (Instant::now(), self.vtime));
        let out = self.recv_deadline_any(from, tag, self.model.suspect_after);
        if let (Some(m), Some((t0, v0))) = (&self.metrics, wait_start) {
            let ns = if self.model.virtual_time {
                ((self.vtime - v0).max(0.0) * 1e9) as u64
            } else {
                t0.elapsed().as_nanos() as u64
            };
            m.histogram(&format!("sub.comm.wait.{}", tag_class(tag)))
                .record(ns);
        }
        out
    }

    /// Deadline receive without the reserved-tag assert (collectives use
    /// it on their own tag space).
    fn recv_deadline_any(
        &mut self,
        from: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Vec<f64>, CommError> {
        // Drain arrivals first: this refreshes heartbeats (possibly
        // retracting a suspicion of `from`) before any fast-fail below.
        while let Ok(env) = self.receiver.try_recv() {
            if let Some(env) = self.admit(env) {
                self.stash.push(env);
            }
        }
        if let Some(e) = self.evicted {
            return Err(CommError::Evicted { epoch: e });
        }
        if let Some(pos) = self
            .stash
            .iter()
            .position(|e| e.from == from && e.tag == tag)
        {
            let env = self.stash.remove(pos);
            return self.deliver_checked(env);
        }
        if self.dead & (1u64 << from) != 0 {
            return Err(self.mark_suspect(from, Duration::ZERO));
        }
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(self.mark_suspect(from, timeout));
            }
            match self.receiver.recv_timeout(deadline - now) {
                Ok(env) => {
                    let Some(env) = self.admit(env) else { continue };
                    if env.from == from && env.tag == tag {
                        return self.deliver_checked(env);
                    }
                    self.stash.push(env);
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    // The universe is tearing down; treat as a dead peer.
                    return Err(self.mark_suspect(from, timeout));
                }
            }
        }
    }

    /// Non-blocking probe: `true` if a matching message has *arrived*
    /// (it may still be in its modeled flight time).
    pub fn probe(&mut self, from: usize, tag: u64) -> bool {
        while let Ok(env) = self.receiver.try_recv() {
            if let Some(env) = self.admit(env) {
                self.stash.push(env);
            }
        }
        self.stash.iter().any(|e| e.from == from && e.tag == tag)
    }

    fn next_op_tag(&mut self) -> u64 {
        let t = RESERVED_TAG_BASE + self.op_counter;
        self.op_counter += 1;
        t
    }

    /// Position of this rank in the live set (its "virtual rank" for
    /// collective trees). Panics if called after eviction/confirmed-dead
    /// bookkeeping removed this rank from its own live set (cannot happen
    /// through the public API).
    fn live_pos(&self) -> usize {
        self.live
            .iter()
            .position(|&r| r == self.rank)
            .expect("rank absent from its own live set")
    }

    /// Depth-scaled patience for collective-internal receives. A peer that
    /// itself timed out on a dead rank lags by a full deadline, so a recv
    /// `mult` levels downstream must wait `mult` deadlines before calling
    /// the sender dead — otherwise one real failure cascades into false
    /// suspicions of every healthy rank on the lagged path.
    fn patience(&self, mult: u32) -> Duration {
        self.model.suspect_after * mult.max(1)
    }

    /// Allreduce with a binary reduction; all ranks receive the reduced
    /// value of their `contributions`. Implemented as a binomial-tree
    /// reduce followed by a binomial-tree broadcast over the *live* ranks,
    /// so the critical path is `2 ⌈log₂ P⌉` message latencies — the
    /// collective cost structure the scaling experiments assume. Every
    /// internal receive carries the suspicion deadline: a silent peer is
    /// skipped (its subtree's contribution is lost) instead of deadlocking
    /// the collective, and ends up in the suspicion mask for
    /// [`Rank::suspicion_consensus`] to rule on. With no dead or silent
    /// peers the result is bit-identical to the pre-liveness collective.
    pub fn allreduce(&mut self, contribution: &[f64], op: impl Fn(f64, f64) -> f64) -> Vec<f64> {
        let tag = self.next_op_tag();
        let live = self.live.clone();
        let p = live.len();
        let me = self.live_pos();
        let depth = ceil_log2(p);
        let mut acc = contribution.to_vec();
        // --- binomial reduce toward live rank 0 --------------------------
        let mut mask = 1usize;
        let mut round = 0u32;
        while mask < p {
            if me & mask != 0 {
                // My bit for this round is set: hand my partial upward.
                self.send_raw(live[me & !mask], tag, &acc);
                break;
            }
            let child = me | mask;
            if child < p {
                let patience = self.patience(round + 2);
                match self.recv_deadline_any(live[child], tag, patience) {
                    Ok(part) => {
                        assert_eq!(part.len(), acc.len(), "allreduce length mismatch");
                        for (a, &b) in acc.iter_mut().zip(&part) {
                            *a = op(*a, b);
                        }
                    }
                    Err(_) => {
                        // Silent subtree: its contribution is lost this
                        // round; the suspicion is recorded for consensus.
                    }
                }
            }
            mask <<= 1;
            round += 1;
        }
        // --- binomial broadcast from live rank 0 -------------------------
        let bcast_patience = self.patience(2 * depth + 2);
        let mut top = 1usize;
        while top < p {
            top <<= 1;
        }
        let mut mask = top >> 1;
        while mask > 0 {
            if me & (mask - 1) == 0 {
                if me & mask == 0 {
                    let partner = me | mask;
                    if partner < p && partner != me {
                        self.send_raw(live[partner], tag, &acc);
                    }
                } else if let Ok(d) = self.recv_deadline_any(live[me & !mask], tag, bcast_patience)
                {
                    acc = d;
                }
                // On timeout: keep the local partial and still forward it
                // below, so our own subtree is not starved.
            }
            mask >>= 1;
        }
        acc
    }

    /// Failure-armored scalar agreement: an allreduce-max where any missed
    /// deadline *poisons the result upward* to [`SUSPECT_FLAG`]. If some
    /// rank is dead, every live rank is guaranteed to return a value
    /// `>= SUSPECT_FLAG` (the dead rank's reduce parent injects the flag
    /// on a live path to the root; its broadcast children self-substitute
    /// it), so survivors agree that a consensus round is needed even
    /// though they cannot yet agree on a value. This is the primitive the
    /// resilient driver uses for its per-step error/liveness agreement.
    pub fn agree_max(&mut self, x: f64) -> f64 {
        if self.evicted.is_some() {
            return SUSPECT_FLAG;
        }
        let tag = self.next_op_tag();
        let live = self.live.clone();
        let p = live.len();
        let me = self.live_pos();
        let depth = ceil_log2(p);
        let mut acc = x;
        let mut mask = 1usize;
        let mut round = 0u32;
        while mask < p {
            if me & mask != 0 {
                self.send_raw(live[me & !mask], tag, &[acc]);
                break;
            }
            let child = me | mask;
            if child < p {
                let patience = self.patience(round + 2);
                match self.recv_deadline_any(live[child], tag, patience) {
                    Ok(part) => acc = acc.max(part[0]),
                    Err(_) => acc = acc.max(SUSPECT_FLAG),
                }
            }
            mask <<= 1;
            round += 1;
        }
        let bcast_patience = self.patience(2 * depth + 2);
        let mut top = 1usize;
        while top < p {
            top <<= 1;
        }
        let mut mask = top >> 1;
        while mask > 0 {
            if me & (mask - 1) == 0 {
                if me & mask == 0 {
                    let partner = me | mask;
                    if partner < p && partner != me {
                        self.send_raw(live[partner], tag, &[acc]);
                    }
                } else {
                    acc = match self.recv_deadline_any(live[me & !mask], tag, bcast_patience) {
                        Ok(d) => d[0],
                        // The root's decision is unreachable: assume the
                        // worst so this rank also enters consensus.
                        Err(_) => SUSPECT_FLAG,
                    };
                }
            }
            mask >>= 1;
        }
        acc
    }

    /// Two-round suspicion consensus among the live ranks, promoting
    /// suspects to the confirmed dead set.
    ///
    /// Round 1 exchanges suspicion bitmasks all-to-all; any rank heard
    /// from is alive (stale suspicions of it are retracted), so the
    /// candidate set is the union of everyone's suspicions plus this
    /// round's timeouts, minus everyone heard. Round 2 repeats the
    /// exchange with the candidate masks: a candidate that speaks up
    /// defends itself, one that stays silent is confirmed dead. On
    /// confirmation the epoch is bumped (stale traffic from the dead rank
    /// is dropped from now on) and the live set shrinks.
    ///
    /// Returns the newly confirmed dead set as a bitmask (0 = false
    /// alarm). Errors with [`CommError::Evicted`] if this rank would be on
    /// the wrong side of the shrink: either a newer epoch was observed, or
    /// the surviving side would be a minority of the previous live set
    /// (the split-brain guard — a lone straggler that outlived its
    /// suspicion deadline sees "everyone else dead" and must evict
    /// *itself* rather than carry on solo).
    pub fn suspicion_consensus(&mut self) -> Result<u64, CommError> {
        let t0 = self
            .trace
            .as_ref()
            .map(|(tracer, _)| tracer.stamp(self.vt()));
        let out = self.suspicion_consensus_inner();
        if let (Some((tracer, track)), Some(t0)) = (&self.trace, t0) {
            // Annotate the round with its verdict: newly-dead count, or
            // -1 when this rank ended up on the evicted side.
            let arg = match &out {
                Ok(mask) => mask.count_ones() as f64,
                Err(_) => -1.0,
            };
            track.span_arg("liveness.consensus", t0, tracer.stamp(self.vt()), arg);
        }
        out
    }

    fn suspicion_consensus_inner(&mut self) -> Result<u64, CommError> {
        if let Some(e) = self.evicted {
            return Err(CommError::Evicted { epoch: e });
        }
        let live = self.live.clone();
        let before = live.len();
        // One absolute deadline covers the whole round: silence from
        // several peers costs one wait, not one per peer, and every live
        // rank exits the round at (entry + patience), which resynchronizes
        // the survivors for whatever collective follows.
        let patience = self.patience(2 * ceil_log2(before) + 4);
        let myself = 1u64 << self.rank;
        let want: u64 = live
            .iter()
            .filter(|&&r| r != self.rank)
            .fold(0u64, |m, &r| m | (1u64 << r));

        let round = |rk: &mut Self, mask: u64| -> Result<(u64, u64, u64), CommError> {
            let tag = rk.next_op_tag();
            for &r in &live {
                if r != rk.rank {
                    rk.send_raw(r, tag, &[f64::from_bits(mask)]);
                }
            }
            let (mut union, mut heard) = (mask, myself);
            let deadline = Instant::now() + patience;
            loop {
                // Sweep the stash for this round's masks.
                let mut i = 0;
                while i < rk.stash.len() {
                    if rk.stash[i].tag == tag && heard & (1u64 << rk.stash[i].from) == 0 {
                        let env = rk.stash.remove(i);
                        let from = env.from;
                        if let Ok(d) = rk.deliver_checked(env) {
                            union |= d[0].to_bits();
                            heard |= 1u64 << from;
                        }
                    } else {
                        i += 1;
                    }
                }
                if heard & want == want {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                match rk.receiver.recv_timeout(deadline - now) {
                    Ok(env) => {
                        if let Some(env) = rk.admit(env) {
                            rk.stash.push(env);
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            let silent = want & !heard;
            if silent != 0 {
                for r in 0..rk.size {
                    if silent & (1u64 << r) != 0 {
                        let _ = rk.mark_suspect(r, Duration::ZERO);
                    }
                }
                if rk.model.virtual_time {
                    rk.vtime += patience.as_secs_f64();
                }
            }
            Ok((union, heard, silent))
        };

        let (union, heard, silent) = round(self, self.suspected & !self.dead)?;
        let candidates = (union | silent) & !heard;
        let (union2, heard2, silent2) = round(self, candidates)?;
        let newly_dead = (union2 | silent2) & !heard2 & !self.dead;

        if newly_dead == 0 {
            return Ok(0);
        }
        if newly_dead & myself != 0 {
            // The responsive majority believes this rank is dead.
            self.evicted = Some(self.epoch + 1);
            self.trace_instant("liveness.evicted_self", self.rank as f64);
            return Err(CommError::Evicted {
                epoch: self.epoch + 1,
            });
        }
        let ndead = newly_dead.count_ones() as usize;
        if (before - ndead) * 2 < before {
            // Split-brain guard: the side keeping less than half of the
            // previous live set yields instead of forking the run.
            self.evicted = Some(self.epoch + 1);
            self.trace_instant("liveness.evicted_self", self.rank as f64);
            return Err(CommError::Evicted {
                epoch: self.epoch + 1,
            });
        }
        for r in 0..self.size {
            if newly_dead & (1u64 << r) != 0 {
                self.trace_instant("liveness.evict", r as f64);
            }
        }
        self.dead |= newly_dead;
        self.suspected &= !newly_dead;
        self.epoch += 1;
        self.live = (0..self.size)
            .filter(|&i| self.dead & (1u64 << i) == 0)
            .collect();
        self.lstats.confirmed_dead += ndead as u64;
        if let Some(m) = &self.metrics {
            m.counter("comm.liveness.confirmed_dead").add(ndead as u64);
        }
        Ok(newly_dead)
    }

    /// Scalar allreduce-min (the Δt reduction).
    pub fn allreduce_min(&mut self, x: f64) -> f64 {
        self.allreduce(&[x], f64::min)[0]
    }

    /// Scalar allreduce-max.
    pub fn allreduce_max(&mut self, x: f64) -> f64 {
        self.allreduce(&[x], f64::max)[0]
    }

    /// Scalar allreduce-sum (conservation audits).
    pub fn allreduce_sum(&mut self, x: f64) -> f64 {
        self.allreduce(&[x], |a, b| a + b)[0]
    }

    /// Barrier, implemented as an empty allreduce so it pays realistic
    /// network costs.
    pub fn barrier(&mut self) {
        self.allreduce(&[0.0], |a, _| a);
    }

    /// Broadcast `data` from `root` to all live ranks via a binomial tree
    /// (`⌈log₂ P⌉` latency depth); returns the payload. `root` must be
    /// live. A silent parent leaves the receiver with an empty payload
    /// (and a recorded suspicion) rather than a deadlock.
    pub fn broadcast(&mut self, root: usize, data: &[f64]) -> Vec<f64> {
        let tag = self.next_op_tag();
        let live = self.live.clone();
        let p = live.len();
        let timeout = self.patience(2 * ceil_log2(p) + 2);
        // Work in root-relative ("virtual") positions of the live set.
        let rootv = live
            .iter()
            .position(|&r| r == root)
            .expect("broadcast root is dead");
        let vrank = (self.live_pos() + p - rootv) % p;
        let to_real = |v: usize| live[(v + rootv) % p];
        let mut payload = if vrank == 0 {
            data.to_vec()
        } else {
            Vec::new()
        };
        let mut top = 1usize;
        while top < p {
            top <<= 1;
        }
        let mut mask = top >> 1;
        while mask > 0 {
            if vrank & (mask - 1) == 0 {
                if vrank & mask == 0 {
                    let partner = vrank | mask;
                    if partner < p && partner != vrank {
                        self.send_raw(to_real(partner), tag, &payload);
                    }
                } else if let Ok(d) = self.recv_deadline_any(to_real(vrank & !mask), tag, timeout) {
                    payload = d;
                }
            }
            mask >>= 1;
        }
        payload
    }
}

/// ⌈log₂ p⌉ for `p >= 1` (0 for `p == 1`).
fn ceil_log2(p: usize) -> u32 {
    usize::BITS - p.saturating_sub(1).leading_zeros()
}

/// Sleep/spin until `t`, choosing the mechanism by remaining duration.
fn wait_until(t: Instant) {
    loop {
        let now = Instant::now();
        if now >= t {
            return;
        }
        let rem = t - now;
        if rem > Duration::from_micros(200) {
            std::thread::sleep(rem - Duration::from_micros(100));
        } else {
            std::hint::spin_loop();
        }
    }
}

/// SPMD entry point: run `f` on `n` simulated ranks (threads) over a
/// network with the given cost model. Returns each rank's result, in rank
/// order. Panics in any rank propagate.
pub fn run<T, F>(n: usize, model: NetworkModel, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut Rank) -> T + Send + Sync,
{
    run_with_faults(n, model, None, f)
}

/// [`run`] with a fault plan: each rank gets a deterministic
/// [`FaultInjector`] salted by its id, applied to halo-tag traffic (and
/// available through [`Rank::fault_injector`] for higher layers to draw
/// cell-poisoning decisions from). `None` or an inactive plan behaves
/// exactly like [`run`].
pub fn run_with_faults<T, F>(n: usize, model: NetworkModel, plan: Option<FaultPlan>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut Rank) -> T + Send + Sync,
{
    assert!(n > 0);
    assert!(n <= 64, "liveness bitmasks support at most 64 ranks");
    let plan = plan.filter(|p| p.is_active());
    let mut txs = Vec::with_capacity(n);
    let mut rxs = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }
    let cpu = std::sync::Arc::new(CpuToken::new());
    let mut ranks: Vec<Rank> = rxs
        .into_iter()
        .enumerate()
        .map(|(i, receiver)| Rank {
            rank: i,
            size: n,
            senders: txs.clone(),
            receiver,
            model,
            stash: Vec::new(),
            op_counter: 0,
            bytes_sent: 0,
            vtime: 0.0,
            cpu: cpu.clone(),
            injector: plan
                .as_ref()
                .map(|p| Arc::new(FaultInjector::new(p.clone(), i as u64))),
            metrics: None,
            trace: None,
            send_seq: 0,
            epoch: 0,
            peer_seq: vec![0; n],
            suspected: 0,
            dead: 0,
            live: (0..n).collect(),
            lstats: LivenessStats::default(),
            evicted: None,
        })
        .collect();
    drop(txs);

    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = ranks
            .iter_mut()
            .map(|rank| s.spawn(move || f(rank)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong() {
        let out = run(2, NetworkModel::ideal(), |r| {
            if r.rank() == 0 {
                r.send(1, 7, &[1.0, 2.0, 3.0]);
                r.recv(1, 8)
            } else {
                let got = r.recv(0, 7);
                let doubled: Vec<f64> = got.iter().map(|x| x * 2.0).collect();
                r.send(0, 8, &doubled);
                got
            }
        });
        assert_eq!(out[0], vec![2.0, 4.0, 6.0]);
        assert_eq!(out[1], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn tag_matching_out_of_order() {
        let out = run(2, NetworkModel::ideal(), |r| {
            if r.rank() == 0 {
                r.send(1, 1, &[1.0]);
                r.send(1, 2, &[2.0]);
                vec![]
            } else {
                // Receive in reverse tag order.
                let b = r.recv(0, 2);
                let a = r.recv(0, 1);
                vec![a[0], b[0]]
            }
        });
        assert_eq!(out[1], vec![1.0, 2.0]);
    }

    #[test]
    fn allreduce_min_max_sum() {
        let out = run(4, NetworkModel::ideal(), |r| {
            let x = r.rank() as f64 + 1.0; // 1..4
            (r.allreduce_min(x), r.allreduce_max(x), r.allreduce_sum(x))
        });
        for &(mn, mx, sm) in &out {
            assert_eq!(mn, 1.0);
            assert_eq!(mx, 4.0);
            assert_eq!(sm, 10.0);
        }
    }

    #[test]
    fn vector_allreduce() {
        let out = run(3, NetworkModel::ideal(), |r| {
            let v = [r.rank() as f64, 10.0 * r.rank() as f64];
            r.allreduce(&v, |a, b| a + b)
        });
        for v in &out {
            assert_eq!(v, &vec![3.0, 30.0]);
        }
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let out = run(3, NetworkModel::ideal(), |r| {
            let payload = if r.rank() == 2 {
                vec![5.0, 6.0]
            } else {
                vec![]
            };
            r.broadcast(2, &payload)
        });
        for v in &out {
            assert_eq!(v, &vec![5.0, 6.0]);
        }
    }

    #[test]
    fn barrier_is_collective() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let arrived = AtomicUsize::new(0);
        run(4, NetworkModel::ideal(), |r| {
            arrived.fetch_add(1, Ordering::SeqCst);
            r.barrier();
            // After the barrier every rank has arrived.
            assert_eq!(arrived.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn latency_is_charged_on_recv() {
        let lat = Duration::from_millis(10);
        let out = run(2, NetworkModel::with_latency(lat), |r| {
            if r.rank() == 0 {
                r.send(1, 1, &[1.0]);
                0.0
            } else {
                let t0 = Instant::now();
                r.recv(0, 1);
                t0.elapsed().as_secs_f64()
            }
        });
        assert!(out[1] >= 0.009, "recv returned after {}s", out[1]);
    }

    #[test]
    fn latency_is_hidden_by_overlap() {
        // Send early, "compute" for longer than the latency, then receive:
        // the receive should be nearly free.
        let lat = Duration::from_millis(10);
        let out = run(2, NetworkModel::with_latency(lat), |r| {
            if r.rank() == 0 {
                r.send(1, 1, &[1.0]);
                0.0
            } else {
                std::thread::sleep(Duration::from_millis(25));
                let t0 = Instant::now();
                r.recv(0, 1);
                t0.elapsed().as_secs_f64()
            }
        });
        assert!(out[1] < 0.008, "overlapped recv took {}s", out[1]);
    }

    #[test]
    fn bandwidth_charged_proportionally() {
        // 1e6 doubles at 8e8 B/s = 10 ms.
        let model = NetworkModel {
            bandwidth: 8e8,
            ..NetworkModel::ideal()
        };
        let out = run(2, model, |r| {
            if r.rank() == 0 {
                r.send(1, 1, &vec![0.0; 1_000_000]);
                0.0
            } else {
                let t0 = Instant::now();
                r.recv(0, 1);
                t0.elapsed().as_secs_f64()
            }
        });
        assert!(out[1] >= 0.009, "bandwidth cost not charged: {}s", out[1]);
    }

    #[test]
    fn bytes_sent_accounting() {
        let out = run(2, NetworkModel::ideal(), |r| {
            if r.rank() == 0 {
                r.send(1, 1, &[0.0; 100]);
                r.bytes_sent()
            } else {
                r.recv(0, 1);
                r.bytes_sent()
            }
        });
        assert_eq!(out[0], 800);
        assert_eq!(out[1], 0);
    }

    #[test]
    fn ring_halo_pattern() {
        // Each rank sends its id to the right neighbor, receives from the
        // left — the skeleton of a halo exchange.
        let n = 5;
        let out = run(n, NetworkModel::ideal(), |r| {
            let right = (r.rank() + 1) % n;
            let left = (r.rank() + n - 1) % n;
            r.send(right, 3, &[r.rank() as f64]);
            r.recv(left, 3)[0]
        });
        for (i, &got) in out.iter().enumerate() {
            assert_eq!(got as usize, (i + n - 1) % n);
        }
    }

    #[test]
    fn many_ranks_stress() {
        let n = 16;
        let out = run(n, NetworkModel::ideal(), |r| {
            let mut acc = 0.0;
            for round in 0..10 {
                acc = r.allreduce_sum(r.rank() as f64 + round as f64);
            }
            acc
        });
        let expected = (0..n).map(|i| (i + 9) as f64).sum::<f64>();
        assert!(out.iter().all(|&v| v == expected));
    }

    #[test]
    fn probe_sees_arrived_messages() {
        let out = run(2, NetworkModel::ideal(), |r| {
            if r.rank() == 0 {
                r.send(1, 9, &[1.0]);
                true
            } else {
                // Wait until the message arrives, observed via probe.
                let mut tries = 0;
                while !r.probe(0, 9) {
                    std::thread::yield_now();
                    tries += 1;
                    assert!(tries < 1_000_000, "probe never saw the message");
                }
                assert!(!r.probe(0, 8), "wrong tag must not match");
                let got = r.recv(0, 9);
                got == vec![1.0]
            }
        });
        assert!(out.iter().all(|&b| b));
    }

    #[test]
    fn tree_collectives_non_power_of_two() {
        for n in [3usize, 5, 6, 7, 9] {
            let out = run(n, NetworkModel::ideal(), |r| {
                let x = (r.rank() * r.rank()) as f64;
                let s = r.allreduce_sum(x);
                let b = r.broadcast(n - 1, &[(r.rank() == n - 1) as u64 as f64 * 42.0]);
                (s, b[0])
            });
            let expected: f64 = (0..n).map(|i| (i * i) as f64).sum();
            for (i, &(s, b)) in out.iter().enumerate() {
                assert_eq!(s, expected, "sum on rank {i} of {n}");
                assert_eq!(b, 42.0, "bcast on rank {i} of {n}");
            }
        }
    }

    fn spin(ms: u64) {
        let end = Instant::now() + Duration::from_millis(ms);
        while Instant::now() < end {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn virtual_work_accumulates_clock() {
        let model = NetworkModel::virtual_cluster(Duration::ZERO, f64::INFINITY);
        let out = run(2, model, |r| {
            let ms = (r.rank() + 1) as u64 * 10;
            r.work(|| spin(ms));
            r.vtime()
        });
        assert!(out[0] >= 0.009 && out[0] < 0.05, "rank0 vtime {}", out[0]);
        assert!(out[1] >= 0.019 && out[1] < 0.08, "rank1 vtime {}", out[1]);
    }

    #[test]
    fn virtual_latency_charged_without_physical_wait() {
        // A 10-second virtual latency must not take 10 real seconds.
        let model = NetworkModel::virtual_cluster(Duration::from_secs(10), f64::INFINITY);
        let t0 = Instant::now();
        let out = run(2, model, |r| {
            if r.rank() == 0 {
                r.send(1, 1, &[1.0]);
                r.vtime()
            } else {
                r.recv(0, 1);
                r.vtime()
            }
        });
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "must not wait physically"
        );
        assert!(out[1] >= 10.0, "receiver clock {}", out[1]);
        assert!(out[0] < 1.0, "sender clock unaffected: {}", out[0]);
    }

    #[test]
    fn virtual_overlap_hides_latency() {
        // Receiver computes past the message's virtual arrival: the recv
        // is then free in virtual time.
        let model = NetworkModel::virtual_cluster(Duration::from_millis(15), f64::INFINITY);
        let out = run(2, model, |r| {
            if r.rank() == 0 {
                r.send(1, 1, &[1.0]);
                0.0
            } else {
                r.advance_vtime(0.050); // model 50 ms of overlapped compute
                let before = r.vtime();
                r.recv(0, 1);
                r.vtime() - before
            }
        });
        assert!(out[1].abs() < 1e-12, "overlapped recv cost {}", out[1]);
    }

    #[test]
    fn virtual_allreduce_synchronizes_clocks() {
        let model = NetworkModel::virtual_cluster(Duration::from_millis(1), f64::INFINITY);
        let out = run(4, model, |r| {
            r.advance_vtime(0.010 * (r.rank() + 1) as f64); // 10..40 ms
            let v = r.allreduce_min(r.rank() as f64);
            assert_eq!(v, 0.0);
            r.vtime()
        });
        // Every rank ends at >= the slowest rank's entry time (40 ms).
        for (i, &v) in out.iter().enumerate() {
            assert!(v >= 0.040, "rank {i} vtime {v}");
        }
    }

    #[test]
    fn advance_vtime_is_manual_cost_injection() {
        let model = NetworkModel::virtual_cluster(Duration::ZERO, f64::INFINITY);
        let out = run(1, model, |r| {
            r.advance_vtime(1.5);
            r.vtime()
        });
        assert_eq!(out[0], 1.5);
    }

    #[test]
    fn work_without_virtual_mode_is_transparent() {
        let out = run(1, NetworkModel::ideal(), |r| {
            let v = r.work(|| 42);
            (v, r.vtime())
        });
        assert_eq!(out[0].0, 42);
        assert_eq!(out[0].1, 0.0);
    }

    #[test]
    #[should_panic]
    fn reserved_tags_rejected() {
        run(2, NetworkModel::ideal(), |r| {
            if r.rank() == 0 {
                r.send(1, RESERVED_TAG_BASE + 1, &[1.0]);
            } else {
                // Avoid hanging the other rank before the panic propagates.
            }
        });
    }

    #[test]
    fn fault_plan_truncates_halo_messages() {
        let plan = FaultPlan {
            seed: 3,
            msg_truncate_prob: 1.0,
            ..FaultPlan::disabled()
        };
        let out = run_with_faults(2, NetworkModel::ideal(), Some(plan), |r| {
            if r.rank() == 0 {
                r.send(1, 1, &[1.0, 2.0, 3.0, 4.0]);
                r.fault_stats().unwrap().msgs_truncated
            } else {
                r.recv(0, 1).len() as u64
            }
        });
        assert_eq!(out[0], 1, "sender counted the truncation");
        assert_eq!(out[1], 2, "receiver got half the payload");
    }

    #[test]
    fn faults_spare_collectives_and_high_tags() {
        let plan = FaultPlan {
            seed: 4,
            msg_truncate_prob: 1.0,
            ..FaultPlan::disabled()
        };
        let out = run_with_faults(4, NetworkModel::ideal(), Some(plan), |r| {
            let s = r.allreduce_sum(r.rank() as f64);
            let gathered = if r.rank() == 0 {
                let mut len = 3usize; // own contribution, not sent
                for src in 1..4 {
                    len += r.recv(src, 1000).len();
                }
                len
            } else {
                r.send(0, 1000, &[0.0, 0.0, 0.0]);
                12
            };
            (s, gathered)
        });
        for &(s, g) in &out {
            assert_eq!(s, 6.0, "collectives must be reliable under faults");
            assert_eq!(g, 12, "tags >= FAULT_TAG_LIMIT are never truncated");
        }
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let plan = || FaultPlan {
            seed: 99,
            msg_truncate_prob: 0.5,
            ..FaultPlan::disabled()
        };
        let lens = || {
            run_with_faults(2, NetworkModel::ideal(), Some(plan()), |r| {
                if r.rank() == 0 {
                    for m in 0..32 {
                        r.send(1, (m % 4) as u64, &[1.0; 8]);
                    }
                    vec![]
                } else {
                    let mut got = Vec::new();
                    for m in 0..32 {
                        got.push(r.recv(0, (m % 4) as u64).len());
                    }
                    got
                }
            })
        };
        let a = lens();
        let b = lens();
        assert_eq!(a[1], b[1], "same plan, same fault pattern");
        assert!(a[1].contains(&4), "some messages truncated");
        assert!(a[1].contains(&8), "some messages intact");
    }

    #[test]
    fn fault_schedule_is_invariant_to_interleaving() {
        // Property: every fault decision is a function of (seed, rank
        // salt, site, draw index) alone — never of wall-clock timing or
        // cross-rank interleaving. Re-running the same ring workload
        // with aggressive per-rank scheduling jitter must reproduce the
        // exact per-rank fault event sequence, for every rank count in
        // 2..=8, including the scheduled crash/stall sites.
        let plan = || FaultPlan {
            seed: 77,
            msg_truncate_prob: 0.3,
            msg_delay_prob: 0.25,
            msg_delay: Duration::from_micros(50),
            crash_rank: Some(1),
            crash_step: 9,
            stall_rank: Some(0),
            stall_factor: 2.0,
            ..FaultPlan::disabled()
        };
        let rounds = 24usize;
        let trace = |jitter: bool, n: usize| {
            run_with_faults(n, NetworkModel::ideal(), Some(plan()), move |r| {
                let next = (r.rank() + 1) % n;
                let prev = (r.rank() + n - 1) % n;
                let mut corrupt = Vec::with_capacity(rounds);
                for round in 0..rounds {
                    if jitter {
                        let us = ((r.rank() * 13 + round * 7) % 5) as u64 * 250;
                        std::thread::sleep(Duration::from_micros(us));
                    }
                    r.send(next, 1, &[round as f64; 6]);
                    let got = r.recv_deadline(prev, 1);
                    corrupt.push(matches!(got, Err(CommError::CorruptPayload { .. })));
                }
                // The scheduled rank-level sites are pure functions of
                // the plan, so a fresh injector replays them without
                // perturbing the rank's own draw streams.
                let probe = FaultInjector::new(plan(), r.rank() as u64);
                let sites: Vec<(bool, bool)> = (0..rounds as u64)
                    .map(|s| {
                        (
                            probe.should_crash_rank(r.rank(), s),
                            probe.should_stall_rank(r.rank()).is_some(),
                        )
                    })
                    .collect();
                let st = r.fault_stats().unwrap();
                (corrupt, sites, st.msgs_truncated, st.msgs_delayed)
            })
        };
        for n in [2usize, 3, 5, 8] {
            let a = trace(false, n);
            let b = trace(true, n);
            assert_eq!(a, b, "fault schedule changed under jitter at n = {n}");
            assert!(
                a.iter().any(|(c, ..)| c.contains(&true)),
                "no message fault ever fired at n = {n}"
            );
            assert!(
                a.iter().any(|(c, ..)| c.contains(&false)),
                "every message faulted at n = {n}"
            );
            let crash_hits = a
                .iter()
                .map(|(_, s, ..)| s.iter().filter(|(c, _)| *c).count())
                .sum::<usize>();
            assert_eq!(
                crash_hits,
                rounds - plan().crash_step as usize,
                "crash site must fire exactly from its scheduled step on"
            );
        }
    }

    #[test]
    fn metrics_count_messages_and_waits() {
        let model = NetworkModel::virtual_cluster(Duration::from_millis(5), f64::INFINITY);
        let reg = Arc::new(Registry::new());
        let reg2 = reg.clone();
        run(2, model, move |r| {
            r.set_metrics(reg2.clone());
            if r.rank() == 0 {
                r.send(1, 1, &[1.0; 10]); // halo class
                r.send(1, 100, &[2.0; 4]); // data class
            } else {
                r.recv(0, 1);
                r.recv(0, 100);
            }
            r.allreduce_sum(1.0);
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counters["comm.msgs.halo"], 1);
        assert_eq!(snap.counters["comm.bytes.halo"], 80);
        assert_eq!(snap.counters["comm.msgs.data"], 1);
        assert_eq!(snap.counters["comm.bytes.data"], 32);
        assert!(
            snap.counters["comm.msgs.collective"] >= 2,
            "allreduce sends"
        );
        // The halo recv blocked for the 5 ms virtual latency.
        let wait = &snap.histograms["sub.comm.wait.halo"];
        assert_eq!(wait.count, 1);
        assert!(wait.sum >= 4_000_000, "halo wait {} ns", wait.sum);
    }

    #[test]
    fn crc_detects_truncation_before_unpack() {
        // With the retry tier disabled, a truncated halo payload reaches
        // the receiver, whose CRC check turns it into a typed error.
        let plan = FaultPlan {
            seed: 11,
            msg_truncate_prob: 1.0,
            ..FaultPlan::disabled()
        };
        let out = run_with_faults(2, NetworkModel::ideal(), Some(plan), |r| {
            if r.rank() == 0 {
                r.send(1, 1, &[1.0, 2.0, 3.0, 4.0]);
                (true, 0)
            } else {
                let got = r.recv_deadline(0, 1);
                let ok = got == Err(CommError::CorruptPayload { from: 0, tag: 1 });
                (ok, r.liveness_stats().crc_escalations)
            }
        });
        assert!(out[1].0, "damage must surface as CorruptPayload");
        assert_eq!(out[1].1, 1, "escalation counted");
    }

    #[test]
    fn crc_retransmit_repairs_damage() {
        // With retries enabled, the modeled link-level retransmit repairs
        // the payload: the receiver sees the full message. Seeded so the
        // retry draws eventually come up clean (deterministic).
        let plan = FaultPlan {
            seed: 12,
            msg_truncate_prob: 0.6,
            ..FaultPlan::disabled()
        };
        let model = NetworkModel::ideal().with_crc_retries(16);
        let out = run_with_faults(2, model, Some(plan), |r| {
            if r.rank() == 0 {
                for _ in 0..8 {
                    r.send(1, 1, &[1.0, 2.0, 3.0, 4.0]);
                }
                let st = r.liveness_stats();
                (st.crc_retries, 0usize)
            } else {
                let mut full = 0usize;
                for _ in 0..8 {
                    if let Ok(d) = r.recv_deadline(0, 1) {
                        assert_eq!(d, vec![1.0, 2.0, 3.0, 4.0]);
                        full += 1;
                    }
                }
                (r.liveness_stats().crc_escalations, full)
            }
        });
        assert!(out[0].0 > 0, "retransmits were modeled");
        assert_eq!(out[1].0, 0, "no damage escaped the retry tier");
        assert_eq!(out[1].1, 8, "all payloads arrived intact");
    }

    #[test]
    fn recv_deadline_suspects_silent_peer() {
        let model = NetworkModel::ideal().with_suspect_after(Duration::from_millis(40));
        let out = run(2, model, |r| {
            if r.rank() == 0 {
                match r.recv_deadline(1, 3) {
                    Err(CommError::PeerSuspect { rank, waited }) => {
                        assert_eq!(rank, 1);
                        assert!(waited >= Duration::from_millis(40));
                    }
                    other => panic!("expected PeerSuspect, got {other:?}"),
                }
                // A merely-suspected peer still gets the full deadline
                // (uniform waits prevent skew cascades); the suspicion is
                // not double counted.
                assert!(r.recv_deadline(1, 4).is_err());
                let st = r.liveness_stats();
                assert_eq!(st.suspicions, 1);
                assert_eq!(r.suspected_mask(), 1 << 1);
                true
            } else {
                // Send nothing on those tags; just exit.
                true
            }
        });
        assert!(out.iter().all(|&b| b));
    }

    #[test]
    fn heartbeat_retracts_suspicion() {
        let model = NetworkModel::ideal().with_suspect_after(Duration::from_millis(40));
        let out = run(2, model, |r| {
            if r.rank() == 0 {
                assert!(r.recv_deadline(1, 3).is_err(), "first deadline expires");
                // The slow peer eventually sends: the arrival is proof of
                // life and the suspicion is retracted.
                let got = loop {
                    match r.recv_deadline(1, 3) {
                        Ok(d) => break d,
                        Err(_) => continue,
                    }
                };
                assert_eq!(got, vec![7.0]);
                let st = r.liveness_stats();
                assert!(st.false_positives >= 1, "retraction counted");
                assert_eq!(r.suspected_mask(), 0);
                true
            } else {
                std::thread::sleep(Duration::from_millis(120));
                r.send(0, 3, &[7.0]);
                true
            }
        });
        assert!(out.iter().all(|&b| b));
    }

    #[test]
    fn agree_max_flags_dead_rank_on_all_survivors() {
        let model = NetworkModel::ideal().with_suspect_after(Duration::from_millis(40));
        let out = run(4, model, |r| {
            if r.rank() == 3 {
                return f64::NAN; // dies immediately: participates in nothing
            }
            r.agree_max(0.0)
        });
        for (i, &v) in out.iter().enumerate().take(3) {
            assert!(v >= SUSPECT_FLAG, "rank {i} must see the flag, got {v}");
        }
    }

    #[test]
    fn consensus_confirms_dead_rank_and_shrinks() {
        let model = NetworkModel::ideal().with_suspect_after(Duration::from_millis(40));
        let out = run(4, model, |r| {
            if r.rank() == 3 {
                return (0, 0, 0.0); // dead from the start
            }
            let flag = r.agree_max(0.0);
            assert!(flag >= SUSPECT_FLAG);
            let newly_dead = r.suspicion_consensus().expect("survivor side");
            assert_eq!(r.live_ranks(), &[0, 1, 2]);
            assert_eq!(r.epoch(), 1);
            assert_eq!(r.liveness_stats().confirmed_dead, 1);
            // Collectives keep working over the shrunken universe.
            let s = r.allreduce_sum(r.rank() as f64);
            (newly_dead, r.epoch(), s)
        });
        for (i, &(mask, epoch, s)) in out.iter().enumerate().take(3) {
            assert_eq!(mask, 1 << 3, "rank {i} confirmed rank 3 dead");
            assert_eq!(epoch, 1);
            assert_eq!(s, 3.0, "post-shrink allreduce over ranks 0..3");
        }
    }

    #[test]
    fn consensus_without_suspicions_is_a_no_op() {
        let out = run(3, NetworkModel::ideal(), |r| {
            let newly_dead = r.suspicion_consensus().expect("all alive");
            (newly_dead, r.epoch(), r.live_ranks().len())
        });
        for &(mask, epoch, nlive) in &out {
            assert_eq!(mask, 0);
            assert_eq!(epoch, 0);
            assert_eq!(nlive, 3);
        }
    }

    #[test]
    fn lone_straggler_evicts_itself() {
        // Rank 1 sleeps through the survivors' whole consensus window
        // (a straggler that wakes *inside* the window defends itself and
        // rejoins — that tolerance is tested implicitly by the sleep
        // length needed here); ranks 0, 2, 3 shrink without it. When the
        // straggler wakes it finds only silence and stale traffic and
        // must self-evict rather than fork the run (split-brain guard).
        let model = NetworkModel::ideal().with_suspect_after(Duration::from_millis(40));
        let out = run(4, model, |r| {
            if r.rank() == 1 {
                std::thread::sleep(Duration::from_millis(1200));
                // The wake-up may still find the survivors' queued
                // pre-shrink traffic; like the driver, keep cycling the
                // agreement protocol until the silence is conclusive.
                for _ in 0..4 {
                    let flag = r.agree_max(0.0);
                    if r.evicted().is_some() {
                        return true;
                    }
                    if flag >= SUSPECT_FLAG
                        && matches!(r.suspicion_consensus(), Err(CommError::Evicted { .. }))
                    {
                        return true;
                    }
                }
                return false;
            }
            let flag = r.agree_max(0.0);
            assert!(flag >= SUSPECT_FLAG);
            let newly_dead = r.suspicion_consensus().expect("majority side");
            assert_eq!(newly_dead, 1 << 1);
            // Survivors continue on the new epoch.
            let s = r.allreduce_sum(1.0);
            assert_eq!(s, 3.0);
            true
        });
        assert!(out.iter().all(|&b| b), "straggler self-evicted: {out:?}");
    }

    #[test]
    fn inactive_plan_is_transparent() {
        let out = run_with_faults(2, NetworkModel::ideal(), Some(FaultPlan::disabled()), |r| {
            if r.rank() == 0 {
                r.send(1, 1, &[1.0, 2.0]);
                r.fault_injector().is_none()
            } else {
                r.recv(0, 1).len() == 2
            }
        });
        assert!(out.iter().all(|&b| b), "inactive plans attach no injector");
    }
}
