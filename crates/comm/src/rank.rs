//! Ranks, tagged messaging, and collectives.

use crossbeam_channel::{unbounded, Receiver, Sender};
use rhrsc_runtime::fault::{FaultInjector, FaultPlan, FaultStats};
use rhrsc_runtime::metrics::Registry;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tags at or above this value are reserved for collectives.
const RESERVED_TAG_BASE: u64 = 1 << 62;

/// Fault injection applies only to tags below this limit (the halo-traffic
/// tag space). Collectives and gathers stay reliable: they carry control
/// decisions — Δt agreement, error coordination — whose loss the recovery
/// protocol itself depends on, mirroring how real resilience layers run
/// their control plane over a reliable transport.
const FAULT_TAG_LIMIT: u64 = 64;

/// Classify a tag for metrics: halo traffic, point-to-point data (gathers,
/// restarts), or collectives (the reserved tag space).
fn tag_class(tag: u64) -> &'static str {
    if tag >= RESERVED_TAG_BASE {
        "collective"
    } else if tag < FAULT_TAG_LIMIT {
        "halo"
    } else {
        "data"
    }
}

/// Cost model of the simulated interconnect.
#[derive(Debug, Clone, Copy)]
pub struct NetworkModel {
    /// Per-message latency.
    pub latency: Duration,
    /// Link bandwidth in bytes/second (`f64::INFINITY` = free).
    pub bandwidth: f64,
    /// Virtual-time mode: network costs are charged to the ranks'
    /// *virtual clocks* instead of being physically waited out, and
    /// compute sections measured with [`Rank::work`] are serialized on a
    /// CPU token so their timings are honest on an oversubscribed host.
    /// This turns the rank universe into a discrete-event simulation of a
    /// cluster — the mechanism behind the scaling experiments on a
    /// single-core machine (see DESIGN.md).
    pub virtual_time: bool,
}

impl NetworkModel {
    /// An ideal (zero-cost) network.
    pub fn ideal() -> Self {
        NetworkModel {
            latency: Duration::ZERO,
            bandwidth: f64::INFINITY,
            virtual_time: false,
        }
    }

    /// A network with the given latency and infinite bandwidth.
    pub fn with_latency(latency: Duration) -> Self {
        NetworkModel {
            latency,
            bandwidth: f64::INFINITY,
            virtual_time: false,
        }
    }

    /// A virtual-time network with the given latency and bandwidth.
    pub fn virtual_cluster(latency: Duration, bandwidth: f64) -> Self {
        NetworkModel {
            latency,
            bandwidth,
            virtual_time: true,
        }
    }

    /// Network cost of a message of `len` doubles, in seconds.
    fn cost_secs(&self, len: usize) -> f64 {
        let mut t = self.latency.as_secs_f64();
        if self.bandwidth.is_finite() && self.bandwidth > 0.0 {
            let bytes = (len * std::mem::size_of::<f64>()) as f64;
            t += bytes / self.bandwidth;
        }
        t
    }

    /// Earliest delivery instant for a message of `len` doubles sent now.
    fn deliverable_at(&self, len: usize) -> Instant {
        Instant::now() + Duration::from_secs_f64(self.cost_secs(len))
    }
}

struct Envelope {
    from: usize,
    tag: u64,
    data: Vec<f64>,
    deliverable_at: Instant,
    /// Virtual delivery time: sender's virtual clock at send plus the
    /// modeled network cost.
    v_deliver: f64,
}

/// Binary CPU token shared by a virtual-time universe: compute sections
/// run one-at-a-time so wall-clock measurements equal CPU time even when
/// ranks outnumber cores.
pub(crate) struct CpuToken {
    busy: parking_lot::Mutex<bool>,
    cv: parking_lot::Condvar,
}

impl CpuToken {
    pub(crate) fn new() -> Self {
        CpuToken {
            busy: parking_lot::Mutex::new(false),
            cv: parking_lot::Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut b = self.busy.lock();
        while *b {
            self.cv.wait(&mut b);
        }
        *b = true;
    }

    fn release(&self) {
        let mut b = self.busy.lock();
        *b = false;
        self.cv.notify_one();
    }
}

/// Per-rank communicator handle.
///
/// Methods take `&mut self`: each rank is single-threaded with respect to
/// communication, like an MPI rank.
pub struct Rank {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Envelope>>,
    receiver: Receiver<Envelope>,
    model: NetworkModel,
    /// Arrived-but-unmatched messages (out-of-order tag matching).
    stash: Vec<Envelope>,
    /// Collective op counter (advances identically on every rank).
    op_counter: u64,
    /// Bytes sent, for communication-volume accounting.
    bytes_sent: u64,
    /// Virtual clock (seconds); only meaningful in virtual-time mode.
    vtime: f64,
    /// Shared CPU token for virtual-time compute sections.
    cpu: std::sync::Arc<CpuToken>,
    /// Optional fault injector for halo-tag traffic (see
    /// [`run_with_faults`]).
    injector: Option<Arc<FaultInjector>>,
    /// Optional metrics registry: per-tag-class message/byte counters and
    /// receive-wait histograms (see [`Rank::set_metrics`]).
    metrics: Option<Arc<Registry>>,
}

impl Rank {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Total payload bytes sent by this rank.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// This rank's virtual clock, in seconds (virtual-time mode).
    pub fn vtime(&self) -> f64 {
        self.vtime
    }

    /// `true` when the universe runs in virtual-time mode.
    pub fn is_virtual(&self) -> bool {
        self.model.virtual_time
    }

    /// Attach a metrics registry. Sends then bump `comm.msgs.<class>` /
    /// `comm.bytes.<class>` counters and receives record their blocking
    /// time into `sub.comm.wait.<class>` histograms, where `<class>` is
    /// `halo`, `data` or `collective` by tag range. In virtual-time mode
    /// the wait is the virtual-clock jump; otherwise wall-clock time.
    pub fn set_metrics(&mut self, metrics: Arc<Registry>) {
        self.metrics = Some(metrics);
    }

    /// Execute a compute section and charge its cost to this rank's
    /// virtual clock. In virtual-time mode the section runs while holding
    /// the universe's CPU token, so its wall-clock measurement equals CPU
    /// time even with many ranks time-sharing few cores. Outside
    /// virtual-time mode this just runs `f`.
    pub fn work<T>(&mut self, f: impl FnOnce() -> T) -> T {
        if !self.model.virtual_time {
            return f();
        }
        self.cpu.acquire();
        let t0 = Instant::now();
        let out = f();
        let secs = t0.elapsed().as_secs_f64();
        self.cpu.release();
        self.vtime += secs;
        out
    }

    /// Charge `secs` of modeled work to the virtual clock without running
    /// anything (used to model known-cost phases, e.g. accelerator
    /// kernels whose throughput differs from the host's).
    pub fn advance_vtime(&mut self, secs: f64) {
        self.vtime += secs;
    }

    /// This rank's fault injector, if the universe was started with
    /// [`run_with_faults`] and an active plan.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.injector.as_ref()
    }

    /// Counters of faults injected on this rank so far.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.injector.as_ref().map(|i| i.stats())
    }

    /// Eagerly send `data` to rank `to` with `tag`. Never blocks; the
    /// network cost is charged to the *receiver* as a delivery timestamp.
    /// Under an active fault plan, halo-tag messages may be truncated or
    /// delayed in flight.
    pub fn send(&mut self, to: usize, tag: u64, data: &[f64]) {
        assert!(tag < RESERVED_TAG_BASE, "tag {tag} is reserved");
        if tag < FAULT_TAG_LIMIT {
            if let Some(inj) = self.injector.clone() {
                let extra = inj.should_delay_msg().unwrap_or(Duration::ZERO);
                if inj.should_truncate_msg() && !data.is_empty() {
                    // Deterministic truncation: drop the trailing half.
                    // The receiver detects the short payload by length.
                    let keep = data.len() / 2;
                    self.send_with_delay(to, tag, &data[..keep], extra);
                } else {
                    self.send_with_delay(to, tag, data, extra);
                }
                return;
            }
        }
        self.send_raw(to, tag, data);
    }

    fn send_raw(&mut self, to: usize, tag: u64, data: &[f64]) {
        self.send_with_delay(to, tag, data, Duration::ZERO);
    }

    fn send_with_delay(&mut self, to: usize, tag: u64, data: &[f64], extra: Duration) {
        assert!(to < self.size, "send to invalid rank {to}");
        assert_ne!(to, self.rank, "self-send is not supported");
        self.bytes_sent += std::mem::size_of_val(data) as u64;
        if let Some(m) = &self.metrics {
            let class = tag_class(tag);
            m.counter(&format!("comm.msgs.{class}")).inc();
            m.counter(&format!("comm.bytes.{class}"))
                .add(std::mem::size_of_val(data) as u64);
        }
        let env = Envelope {
            from: self.rank,
            tag,
            data: data.to_vec(),
            deliverable_at: if self.model.virtual_time {
                // No physical wait in virtual mode.
                Instant::now()
            } else {
                self.model.deliverable_at(data.len()) + extra
            },
            v_deliver: self.vtime + self.model.cost_secs(data.len()) + extra.as_secs_f64(),
        };
        self.senders[to].send(env).expect("rank channel closed");
    }

    /// Blocking receive of the message from `from` with `tag`. Messages
    /// from other sources/tags that arrive first are stashed and matched
    /// by later receives (MPI-style tag matching; messages from one sender
    /// with one tag are delivered in order).
    pub fn recv(&mut self, from: usize, tag: u64) -> Vec<f64> {
        assert!(tag < RESERVED_TAG_BASE, "tag {tag} is reserved");
        self.recv_raw(from, tag)
    }

    fn recv_raw(&mut self, from: usize, tag: u64) -> Vec<f64> {
        // Only pay for clock reads when a registry is attached.
        let wait_start = self.metrics.as_ref().map(|_| (Instant::now(), self.vtime));
        let data = self.recv_raw_inner(from, tag);
        if let (Some(m), Some((t0, v0))) = (&self.metrics, wait_start) {
            let ns = if self.model.virtual_time {
                ((self.vtime - v0).max(0.0) * 1e9) as u64
            } else {
                t0.elapsed().as_nanos() as u64
            };
            m.histogram(&format!("sub.comm.wait.{}", tag_class(tag)))
                .record(ns);
        }
        data
    }

    fn recv_raw_inner(&mut self, from: usize, tag: u64) -> Vec<f64> {
        // Check the stash first.
        if let Some(pos) = self
            .stash
            .iter()
            .position(|e| e.from == from && e.tag == tag)
        {
            let env = self.stash.remove(pos);
            return self.deliver(env);
        }
        loop {
            let env = self.receiver.recv().expect("rank channel closed");
            if env.from == from && env.tag == tag {
                return self.deliver(env);
            }
            self.stash.push(env);
        }
    }

    /// Charge the message's arrival to the appropriate clock and hand the
    /// payload over.
    fn deliver(&mut self, env: Envelope) -> Vec<f64> {
        if self.model.virtual_time {
            // A receive completes no earlier than the message's virtual
            // delivery time; waiting is free (the rank was blocked).
            self.vtime = self.vtime.max(env.v_deliver);
        } else {
            wait_until(env.deliverable_at);
        }
        env.data
    }

    /// Non-blocking probe: `true` if a matching message has *arrived*
    /// (it may still be in its modeled flight time).
    pub fn probe(&mut self, from: usize, tag: u64) -> bool {
        while let Ok(env) = self.receiver.try_recv() {
            self.stash.push(env);
        }
        self.stash.iter().any(|e| e.from == from && e.tag == tag)
    }

    fn next_op_tag(&mut self) -> u64 {
        let t = RESERVED_TAG_BASE + self.op_counter;
        self.op_counter += 1;
        t
    }

    /// Allreduce with a binary reduction; all ranks receive the reduced
    /// value of their `contributions`. Implemented as a binomial-tree
    /// reduce to rank 0 followed by a binomial-tree broadcast, so the
    /// critical path is `2 ⌈log₂ P⌉` message latencies — the collective
    /// cost structure the scaling experiments assume.
    pub fn allreduce(&mut self, contribution: &[f64], op: impl Fn(f64, f64) -> f64) -> Vec<f64> {
        let tag = self.next_op_tag();
        let mut acc = contribution.to_vec();
        // --- binomial reduce toward rank 0 ------------------------------
        let mut mask = 1usize;
        while mask < self.size {
            if self.rank & mask != 0 {
                // My bit for this round is set: hand my partial upward.
                let partner = self.rank & !mask;
                self.send_raw(partner, tag, &acc);
                break;
            }
            let partner = self.rank | mask;
            if partner < self.size {
                let part = self.recv_raw(partner, tag);
                assert_eq!(part.len(), acc.len(), "allreduce length mismatch");
                for (a, &b) in acc.iter_mut().zip(&part) {
                    *a = op(*a, b);
                }
            }
            mask <<= 1;
        }
        // --- binomial broadcast from rank 0 -----------------------------
        let mut top = 1usize;
        while top < self.size {
            top <<= 1;
        }
        let mut mask = top >> 1;
        while mask > 0 {
            if self.rank & (mask - 1) == 0 {
                if self.rank & mask == 0 {
                    let partner = self.rank | mask;
                    if partner < self.size && partner != self.rank {
                        self.send_raw(partner, tag, &acc);
                    }
                } else {
                    let partner = self.rank & !mask;
                    acc = self.recv_raw(partner, tag);
                }
            }
            mask >>= 1;
        }
        acc
    }

    /// Scalar allreduce-min (the Δt reduction).
    pub fn allreduce_min(&mut self, x: f64) -> f64 {
        self.allreduce(&[x], f64::min)[0]
    }

    /// Scalar allreduce-max.
    pub fn allreduce_max(&mut self, x: f64) -> f64 {
        self.allreduce(&[x], f64::max)[0]
    }

    /// Scalar allreduce-sum (conservation audits).
    pub fn allreduce_sum(&mut self, x: f64) -> f64 {
        self.allreduce(&[x], |a, b| a + b)[0]
    }

    /// Barrier, implemented as an empty allreduce so it pays realistic
    /// network costs.
    pub fn barrier(&mut self) {
        self.allreduce(&[0.0], |a, _| a);
    }

    /// Broadcast `data` from `root` to all ranks via a binomial tree
    /// (`⌈log₂ P⌉` latency depth); returns the payload.
    pub fn broadcast(&mut self, root: usize, data: &[f64]) -> Vec<f64> {
        let tag = self.next_op_tag();
        // Work in root-relative ("virtual") rank space.
        let size = self.size;
        let vrank = (self.rank + size - root) % size;
        let to_real = move |v: usize| (v + root) % size;
        let mut payload = if vrank == 0 {
            data.to_vec()
        } else {
            Vec::new()
        };
        let mut top = 1usize;
        while top < self.size {
            top <<= 1;
        }
        let mut mask = top >> 1;
        while mask > 0 {
            if vrank & (mask - 1) == 0 {
                if vrank & mask == 0 {
                    let partner = vrank | mask;
                    if partner < self.size && partner != vrank {
                        self.send_raw(to_real(partner), tag, &payload);
                    }
                } else {
                    let partner = vrank & !mask;
                    payload = self.recv_raw(to_real(partner), tag);
                }
            }
            mask >>= 1;
        }
        payload
    }
}

/// Sleep/spin until `t`, choosing the mechanism by remaining duration.
fn wait_until(t: Instant) {
    loop {
        let now = Instant::now();
        if now >= t {
            return;
        }
        let rem = t - now;
        if rem > Duration::from_micros(200) {
            std::thread::sleep(rem - Duration::from_micros(100));
        } else {
            std::hint::spin_loop();
        }
    }
}

/// SPMD entry point: run `f` on `n` simulated ranks (threads) over a
/// network with the given cost model. Returns each rank's result, in rank
/// order. Panics in any rank propagate.
pub fn run<T, F>(n: usize, model: NetworkModel, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut Rank) -> T + Send + Sync,
{
    run_with_faults(n, model, None, f)
}

/// [`run`] with a fault plan: each rank gets a deterministic
/// [`FaultInjector`] salted by its id, applied to halo-tag traffic (and
/// available through [`Rank::fault_injector`] for higher layers to draw
/// cell-poisoning decisions from). `None` or an inactive plan behaves
/// exactly like [`run`].
pub fn run_with_faults<T, F>(n: usize, model: NetworkModel, plan: Option<FaultPlan>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut Rank) -> T + Send + Sync,
{
    assert!(n > 0);
    let plan = plan.filter(|p| p.is_active());
    let mut txs = Vec::with_capacity(n);
    let mut rxs = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        txs.push(tx);
        rxs.push(rx);
    }
    let cpu = std::sync::Arc::new(CpuToken::new());
    let mut ranks: Vec<Rank> = rxs
        .into_iter()
        .enumerate()
        .map(|(i, receiver)| Rank {
            rank: i,
            size: n,
            senders: txs.clone(),
            receiver,
            model,
            stash: Vec::new(),
            op_counter: 0,
            bytes_sent: 0,
            vtime: 0.0,
            cpu: cpu.clone(),
            injector: plan
                .as_ref()
                .map(|p| Arc::new(FaultInjector::new(p.clone(), i as u64))),
            metrics: None,
        })
        .collect();
    drop(txs);

    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = ranks
            .iter_mut()
            .map(|rank| s.spawn(move || f(rank)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong() {
        let out = run(2, NetworkModel::ideal(), |r| {
            if r.rank() == 0 {
                r.send(1, 7, &[1.0, 2.0, 3.0]);
                r.recv(1, 8)
            } else {
                let got = r.recv(0, 7);
                let doubled: Vec<f64> = got.iter().map(|x| x * 2.0).collect();
                r.send(0, 8, &doubled);
                got
            }
        });
        assert_eq!(out[0], vec![2.0, 4.0, 6.0]);
        assert_eq!(out[1], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn tag_matching_out_of_order() {
        let out = run(2, NetworkModel::ideal(), |r| {
            if r.rank() == 0 {
                r.send(1, 1, &[1.0]);
                r.send(1, 2, &[2.0]);
                vec![]
            } else {
                // Receive in reverse tag order.
                let b = r.recv(0, 2);
                let a = r.recv(0, 1);
                vec![a[0], b[0]]
            }
        });
        assert_eq!(out[1], vec![1.0, 2.0]);
    }

    #[test]
    fn allreduce_min_max_sum() {
        let out = run(4, NetworkModel::ideal(), |r| {
            let x = r.rank() as f64 + 1.0; // 1..4
            (r.allreduce_min(x), r.allreduce_max(x), r.allreduce_sum(x))
        });
        for &(mn, mx, sm) in &out {
            assert_eq!(mn, 1.0);
            assert_eq!(mx, 4.0);
            assert_eq!(sm, 10.0);
        }
    }

    #[test]
    fn vector_allreduce() {
        let out = run(3, NetworkModel::ideal(), |r| {
            let v = [r.rank() as f64, 10.0 * r.rank() as f64];
            r.allreduce(&v, |a, b| a + b)
        });
        for v in &out {
            assert_eq!(v, &vec![3.0, 30.0]);
        }
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let out = run(3, NetworkModel::ideal(), |r| {
            let payload = if r.rank() == 2 {
                vec![5.0, 6.0]
            } else {
                vec![]
            };
            r.broadcast(2, &payload)
        });
        for v in &out {
            assert_eq!(v, &vec![5.0, 6.0]);
        }
    }

    #[test]
    fn barrier_is_collective() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let arrived = AtomicUsize::new(0);
        run(4, NetworkModel::ideal(), |r| {
            arrived.fetch_add(1, Ordering::SeqCst);
            r.barrier();
            // After the barrier every rank has arrived.
            assert_eq!(arrived.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn latency_is_charged_on_recv() {
        let lat = Duration::from_millis(10);
        let out = run(2, NetworkModel::with_latency(lat), |r| {
            if r.rank() == 0 {
                r.send(1, 1, &[1.0]);
                0.0
            } else {
                let t0 = Instant::now();
                r.recv(0, 1);
                t0.elapsed().as_secs_f64()
            }
        });
        assert!(out[1] >= 0.009, "recv returned after {}s", out[1]);
    }

    #[test]
    fn latency_is_hidden_by_overlap() {
        // Send early, "compute" for longer than the latency, then receive:
        // the receive should be nearly free.
        let lat = Duration::from_millis(10);
        let out = run(2, NetworkModel::with_latency(lat), |r| {
            if r.rank() == 0 {
                r.send(1, 1, &[1.0]);
                0.0
            } else {
                std::thread::sleep(Duration::from_millis(25));
                let t0 = Instant::now();
                r.recv(0, 1);
                t0.elapsed().as_secs_f64()
            }
        });
        assert!(out[1] < 0.008, "overlapped recv took {}s", out[1]);
    }

    #[test]
    fn bandwidth_charged_proportionally() {
        // 1e6 doubles at 8e8 B/s = 10 ms.
        let model = NetworkModel {
            latency: Duration::ZERO,
            bandwidth: 8e8,
            virtual_time: false,
        };
        let out = run(2, model, |r| {
            if r.rank() == 0 {
                r.send(1, 1, &vec![0.0; 1_000_000]);
                0.0
            } else {
                let t0 = Instant::now();
                r.recv(0, 1);
                t0.elapsed().as_secs_f64()
            }
        });
        assert!(out[1] >= 0.009, "bandwidth cost not charged: {}s", out[1]);
    }

    #[test]
    fn bytes_sent_accounting() {
        let out = run(2, NetworkModel::ideal(), |r| {
            if r.rank() == 0 {
                r.send(1, 1, &[0.0; 100]);
                r.bytes_sent()
            } else {
                r.recv(0, 1);
                r.bytes_sent()
            }
        });
        assert_eq!(out[0], 800);
        assert_eq!(out[1], 0);
    }

    #[test]
    fn ring_halo_pattern() {
        // Each rank sends its id to the right neighbor, receives from the
        // left — the skeleton of a halo exchange.
        let n = 5;
        let out = run(n, NetworkModel::ideal(), |r| {
            let right = (r.rank() + 1) % n;
            let left = (r.rank() + n - 1) % n;
            r.send(right, 3, &[r.rank() as f64]);
            r.recv(left, 3)[0]
        });
        for (i, &got) in out.iter().enumerate() {
            assert_eq!(got as usize, (i + n - 1) % n);
        }
    }

    #[test]
    fn many_ranks_stress() {
        let n = 16;
        let out = run(n, NetworkModel::ideal(), |r| {
            let mut acc = 0.0;
            for round in 0..10 {
                acc = r.allreduce_sum(r.rank() as f64 + round as f64);
            }
            acc
        });
        let expected = (0..n).map(|i| (i + 9) as f64).sum::<f64>();
        assert!(out.iter().all(|&v| v == expected));
    }

    #[test]
    fn probe_sees_arrived_messages() {
        let out = run(2, NetworkModel::ideal(), |r| {
            if r.rank() == 0 {
                r.send(1, 9, &[1.0]);
                true
            } else {
                // Wait until the message arrives, observed via probe.
                let mut tries = 0;
                while !r.probe(0, 9) {
                    std::thread::yield_now();
                    tries += 1;
                    assert!(tries < 1_000_000, "probe never saw the message");
                }
                assert!(!r.probe(0, 8), "wrong tag must not match");
                let got = r.recv(0, 9);
                got == vec![1.0]
            }
        });
        assert!(out.iter().all(|&b| b));
    }

    #[test]
    fn tree_collectives_non_power_of_two() {
        for n in [3usize, 5, 6, 7, 9] {
            let out = run(n, NetworkModel::ideal(), |r| {
                let x = (r.rank() * r.rank()) as f64;
                let s = r.allreduce_sum(x);
                let b = r.broadcast(n - 1, &[(r.rank() == n - 1) as u64 as f64 * 42.0]);
                (s, b[0])
            });
            let expected: f64 = (0..n).map(|i| (i * i) as f64).sum();
            for (i, &(s, b)) in out.iter().enumerate() {
                assert_eq!(s, expected, "sum on rank {i} of {n}");
                assert_eq!(b, 42.0, "bcast on rank {i} of {n}");
            }
        }
    }

    fn spin(ms: u64) {
        let end = Instant::now() + Duration::from_millis(ms);
        while Instant::now() < end {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn virtual_work_accumulates_clock() {
        let model = NetworkModel::virtual_cluster(Duration::ZERO, f64::INFINITY);
        let out = run(2, model, |r| {
            let ms = (r.rank() + 1) as u64 * 10;
            r.work(|| spin(ms));
            r.vtime()
        });
        assert!(out[0] >= 0.009 && out[0] < 0.05, "rank0 vtime {}", out[0]);
        assert!(out[1] >= 0.019 && out[1] < 0.08, "rank1 vtime {}", out[1]);
    }

    #[test]
    fn virtual_latency_charged_without_physical_wait() {
        // A 10-second virtual latency must not take 10 real seconds.
        let model = NetworkModel::virtual_cluster(Duration::from_secs(10), f64::INFINITY);
        let t0 = Instant::now();
        let out = run(2, model, |r| {
            if r.rank() == 0 {
                r.send(1, 1, &[1.0]);
                r.vtime()
            } else {
                r.recv(0, 1);
                r.vtime()
            }
        });
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "must not wait physically"
        );
        assert!(out[1] >= 10.0, "receiver clock {}", out[1]);
        assert!(out[0] < 1.0, "sender clock unaffected: {}", out[0]);
    }

    #[test]
    fn virtual_overlap_hides_latency() {
        // Receiver computes past the message's virtual arrival: the recv
        // is then free in virtual time.
        let model = NetworkModel::virtual_cluster(Duration::from_millis(15), f64::INFINITY);
        let out = run(2, model, |r| {
            if r.rank() == 0 {
                r.send(1, 1, &[1.0]);
                0.0
            } else {
                r.advance_vtime(0.050); // model 50 ms of overlapped compute
                let before = r.vtime();
                r.recv(0, 1);
                r.vtime() - before
            }
        });
        assert!(out[1].abs() < 1e-12, "overlapped recv cost {}", out[1]);
    }

    #[test]
    fn virtual_allreduce_synchronizes_clocks() {
        let model = NetworkModel::virtual_cluster(Duration::from_millis(1), f64::INFINITY);
        let out = run(4, model, |r| {
            r.advance_vtime(0.010 * (r.rank() + 1) as f64); // 10..40 ms
            let v = r.allreduce_min(r.rank() as f64);
            assert_eq!(v, 0.0);
            r.vtime()
        });
        // Every rank ends at >= the slowest rank's entry time (40 ms).
        for (i, &v) in out.iter().enumerate() {
            assert!(v >= 0.040, "rank {i} vtime {v}");
        }
    }

    #[test]
    fn advance_vtime_is_manual_cost_injection() {
        let model = NetworkModel::virtual_cluster(Duration::ZERO, f64::INFINITY);
        let out = run(1, model, |r| {
            r.advance_vtime(1.5);
            r.vtime()
        });
        assert_eq!(out[0], 1.5);
    }

    #[test]
    fn work_without_virtual_mode_is_transparent() {
        let out = run(1, NetworkModel::ideal(), |r| {
            let v = r.work(|| 42);
            (v, r.vtime())
        });
        assert_eq!(out[0].0, 42);
        assert_eq!(out[0].1, 0.0);
    }

    #[test]
    #[should_panic]
    fn reserved_tags_rejected() {
        run(2, NetworkModel::ideal(), |r| {
            if r.rank() == 0 {
                r.send(1, RESERVED_TAG_BASE + 1, &[1.0]);
            } else {
                // Avoid hanging the other rank before the panic propagates.
            }
        });
    }

    #[test]
    fn fault_plan_truncates_halo_messages() {
        let plan = FaultPlan {
            seed: 3,
            msg_truncate_prob: 1.0,
            ..FaultPlan::disabled()
        };
        let out = run_with_faults(2, NetworkModel::ideal(), Some(plan), |r| {
            if r.rank() == 0 {
                r.send(1, 1, &[1.0, 2.0, 3.0, 4.0]);
                r.fault_stats().unwrap().msgs_truncated
            } else {
                r.recv(0, 1).len() as u64
            }
        });
        assert_eq!(out[0], 1, "sender counted the truncation");
        assert_eq!(out[1], 2, "receiver got half the payload");
    }

    #[test]
    fn faults_spare_collectives_and_high_tags() {
        let plan = FaultPlan {
            seed: 4,
            msg_truncate_prob: 1.0,
            ..FaultPlan::disabled()
        };
        let out = run_with_faults(4, NetworkModel::ideal(), Some(plan), |r| {
            let s = r.allreduce_sum(r.rank() as f64);
            let gathered = if r.rank() == 0 {
                let mut len = 3usize; // own contribution, not sent
                for src in 1..4 {
                    len += r.recv(src, 1000).len();
                }
                len
            } else {
                r.send(0, 1000, &[0.0, 0.0, 0.0]);
                12
            };
            (s, gathered)
        });
        for &(s, g) in &out {
            assert_eq!(s, 6.0, "collectives must be reliable under faults");
            assert_eq!(g, 12, "tags >= FAULT_TAG_LIMIT are never truncated");
        }
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let plan = || FaultPlan {
            seed: 99,
            msg_truncate_prob: 0.5,
            ..FaultPlan::disabled()
        };
        let lens = || {
            run_with_faults(2, NetworkModel::ideal(), Some(plan()), |r| {
                if r.rank() == 0 {
                    for m in 0..32 {
                        r.send(1, (m % 4) as u64, &[1.0; 8]);
                    }
                    vec![]
                } else {
                    let mut got = Vec::new();
                    for m in 0..32 {
                        got.push(r.recv(0, (m % 4) as u64).len());
                    }
                    got
                }
            })
        };
        let a = lens();
        let b = lens();
        assert_eq!(a[1], b[1], "same plan, same fault pattern");
        assert!(a[1].contains(&4), "some messages truncated");
        assert!(a[1].contains(&8), "some messages intact");
    }

    #[test]
    fn metrics_count_messages_and_waits() {
        let model = NetworkModel::virtual_cluster(Duration::from_millis(5), f64::INFINITY);
        let reg = Arc::new(Registry::new());
        let reg2 = reg.clone();
        run(2, model, move |r| {
            r.set_metrics(reg2.clone());
            if r.rank() == 0 {
                r.send(1, 1, &[1.0; 10]); // halo class
                r.send(1, 100, &[2.0; 4]); // data class
            } else {
                r.recv(0, 1);
                r.recv(0, 100);
            }
            r.allreduce_sum(1.0);
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counters["comm.msgs.halo"], 1);
        assert_eq!(snap.counters["comm.bytes.halo"], 80);
        assert_eq!(snap.counters["comm.msgs.data"], 1);
        assert_eq!(snap.counters["comm.bytes.data"], 32);
        assert!(
            snap.counters["comm.msgs.collective"] >= 2,
            "allreduce sends"
        );
        // The halo recv blocked for the 5 ms virtual latency.
        let wait = &snap.histograms["sub.comm.wait.halo"];
        assert_eq!(wait.count, 1);
        assert!(wait.sum >= 4_000_000, "halo wait {} ns", wait.sum);
    }

    #[test]
    fn inactive_plan_is_transparent() {
        let out = run_with_faults(2, NetworkModel::ideal(), Some(FaultPlan::disabled()), |r| {
            if r.rank() == 0 {
                r.send(1, 1, &[1.0, 2.0]);
                r.fault_injector().is_none()
            } else {
                r.recv(0, 1).len() == 2
            }
        });
        assert!(out.iter().all(|&b| b), "inactive plans attach no injector");
    }
}
