//! Simulated distributed-memory communication layer.
//!
//! The paper runs on an MPI/HPX cluster; this crate provides the closest
//! single-machine equivalent: *ranks are OS threads* exchanging typed
//! messages over channels, with an injectable [`NetworkModel`] that charges
//! per-message latency and per-byte bandwidth cost. Because the cost is
//! charged as a *delivery timestamp* (not by blocking the sender), posting
//! sends early and computing before receiving genuinely hides network
//! latency — which is exactly what the communication/computation-overlap
//! experiment (F7) measures.
//!
//! * [`run`] — SPMD entry point: spawns `n` ranks and runs the same
//!   closure on each,
//! * [`Rank`] — per-rank handle: tagged `send`/`recv` with out-of-order
//!   matching, barrier, and allreduce (min/max/sum) collectives.

pub mod rank;

pub use rank::{
    run, run_with_faults, CommError, LivenessStats, NetworkModel, Rank, AMR_DESCEND_TAG_BASE,
    AMR_REFLUX_TAG_BASE, AMR_REGRID_TAG, AMR_SYNC_TAG_BASE, BUDDY_CKP_TAG, BUDDY_RESTORE_TAG,
    BUDDY_SHRINK_TAG, SUSPECT_FLAG, TELEMETRY_TAG,
};
pub use rhrsc_runtime::fault::{FaultInjector, FaultPlan, FaultStats};
