//! Cross-crate integration tests: full solver pipelines exercised through
//! the umbrella crate's public API, validated against exact solutions and
//! cross-checked across execution backends.

use rhrsc::comm::{run, NetworkModel};
use rhrsc::grid::{bc, Bc, CartDecomp, Field, PatchGeom};
use rhrsc::runtime::{AcceleratorConfig, WorkStealingPool};
use rhrsc::solver::device_backend::DevicePatchSolver;
use rhrsc::solver::diag::{conservation_drift, conserved_totals, l1_density_error, observed_order};
use rhrsc::solver::driver::{gather_global, BlockSolver, DistConfig, ExchangeMode};
use rhrsc::solver::problems::Problem;
use rhrsc::solver::scheme::init_cons;
use rhrsc::solver::{PatchSolver, RkOrder, Scheme};
use rhrsc::srhd::recon::{Limiter, Recon};
use rhrsc::srhd::riemann::RiemannSolver;
use rhrsc::srhd::Prim;
use std::time::Duration;

fn sod_scheme() -> Scheme {
    Scheme::default_with_gamma(5.0 / 3.0)
}

#[test]
fn sod_converges_to_exact_solution() {
    // L1 error must decrease with resolution and be small in absolute
    // terms (first-order in L1 at shocks).
    let prob = Problem::sod();
    let scheme = sod_scheme();
    let mut errors = Vec::new();
    for n in [100usize, 200, 400] {
        let geom = PatchGeom::line(n, 0.0, 1.0, scheme.required_ghosts());
        let mut u = init_cons(geom, &scheme.eos, &|x| (prob.ic)(x));
        let mut solver = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk3, geom);
        solver
            .advance_to(&mut u, 0.0, prob.t_end, 0.4, None)
            .unwrap();
        let exact = prob.exact.clone().unwrap();
        let (l1, _) = l1_density_error(&scheme, &u, &exact, prob.t_end).unwrap();
        errors.push((n, l1));
    }
    assert!(
        errors[2].1 < errors[1].1 && errors[1].1 < errors[0].1,
        "{errors:?}"
    );
    assert!(errors[2].1 < 5e-3, "N=400 error {}", errors[2].1);
    let order = observed_order(&errors);
    assert!(order > 0.6, "shock-limited order {order} (expected ~0.8-1)");
}

#[test]
fn blast_wave_1_shock_position() {
    // The computed shock front must land where the exact solution puts it
    // (within a few zones).
    let prob = Problem::blast_wave_1();
    let scheme = sod_scheme();
    let n = 400;
    let geom = PatchGeom::line(n, 0.0, 1.0, scheme.required_ghosts());
    let mut u = init_cons(geom, &scheme.eos, &|x| (prob.ic)(x));
    let mut solver = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk3, geom);
    solver
        .advance_to(&mut u, 0.0, prob.t_end, 0.4, None)
        .unwrap();
    let (_, prim) =
        l1_density_error(&scheme, &u, &prob.exact.clone().unwrap(), prob.t_end).unwrap();
    // Find the computed shock: rightmost cell with rho > 2 (shell density
    // far exceeds the ambient 1.0).
    let g = *prim.geom();
    let mut shock_x = 0.0;
    for (i, j, k) in g.interior_iter() {
        if prim.at(0, i, j, k) > 2.0 {
            shock_x = g.center(i, j, k)[0];
        }
    }
    // Exact front position.
    let exact = prob.exact.clone().unwrap();
    let mut exact_x = 0.0;
    for i in 0..4000 {
        let x = i as f64 / 4000.0;
        if exact([x, 0.0, 0.0], prob.t_end).rho > 2.0 {
            exact_x = x;
        }
    }
    assert!(
        (shock_x - exact_x).abs() < 5.0 / n as f64,
        "shock at {shock_x}, exact {exact_x}"
    );
}

#[test]
fn taub_mathews_eos_runs_sod() {
    // The TM EOS has no exact solver, but the run must be stable and
    // conserve under periodic continuation of the tube.
    let scheme = Scheme {
        eos: rhrsc::eos::Eos::TaubMathews,
        ..sod_scheme()
    };
    let geom = PatchGeom::line(128, 0.0, 1.0, scheme.required_ghosts());
    let ic = |x: [f64; 3]| {
        if (0.25..0.75).contains(&x[0]) {
            Prim::at_rest(1.0, 1.0)
        } else {
            Prim::at_rest(0.125, 0.1)
        }
    };
    let mut u = init_cons(geom, &scheme.eos, &ic);
    let before = conserved_totals(&u);
    let mut solver = PatchSolver::new(scheme, bc::uniform(Bc::Periodic), RkOrder::Rk3, geom);
    solver.advance_to(&mut u, 0.0, 0.3, 0.4, None).unwrap();
    let after = conserved_totals(&u);
    assert!(conservation_drift(&before, &after) < 1e-12);
}

#[test]
fn all_riemann_solvers_agree_on_smooth_flow() {
    // On smooth flow the choice of approximate Riemann solver is a
    // higher-order detail: solutions must agree to O(dx^2).
    let prob = Problem::density_wave(0.3, 0.2);
    let mut results = Vec::new();
    for rs in RiemannSolver::ALL {
        let scheme = Scheme {
            riemann: rs,
            recon: Recon::Plm(Limiter::Mc),
            ..sod_scheme()
        };
        let geom = PatchGeom::line(128, 0.0, 1.0, scheme.required_ghosts());
        let mut u = init_cons(geom, &scheme.eos, &|x| (prob.ic)(x));
        let mut solver = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk3, geom);
        solver.advance_to(&mut u, 0.0, 0.2, 0.4, None).unwrap();
        results.push(u);
    }
    let d01 = results[0].interior_l2_distance(&results[1]);
    let d12 = results[1].interior_l2_distance(&results[2]);
    assert!(d01 < 1e-3, "rusanov vs hll: {d01}");
    assert!(d12 < 1e-3, "hll vs hllc: {d12}");
}

#[test]
fn distributed_heterogeneous_pipeline_end_to_end() {
    // 2D blast over 4 ranks with latency, overlap mode, gang threads —
    // everything on — must equal the serial single-patch run bitwise.
    let scheme = sod_scheme();
    let ic = |x: [f64; 3]| {
        let r2 = (x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2);
        Prim::at_rest(1.0, if r2 < 0.02 { 50.0 } else { 1.0 })
    };
    let cfg = DistConfig {
        scheme,
        rk: RkOrder::Rk3,
        global_n: [64, 64, 1],
        domain: ([0.0; 3], [1.0, 1.0, 1.0]),
        decomp: CartDecomp {
            dims: [2, 2, 1],
            periodic: [true, true, false],
        },
        bcs: bc::uniform(Bc::Periodic),
        cfl: 0.4,
        mode: ExchangeMode::Overlap,
        gang_threads: 2,
        dt_refresh_interval: 1,
    };
    // Serial reference.
    let geom = PatchGeom {
        n: [64, 64, 1],
        ng: scheme.required_ghosts(),
        origin: [0.0; 3],
        dx: cfg.local_geom(0).dx,
    };
    let mut u_ref = init_cons(geom, &scheme.eos, &ic);
    let mut serial = PatchSolver::new(scheme, cfg.bcs, RkOrder::Rk3, geom);
    serial.advance_to(&mut u_ref, 0.0, 0.05, 0.4, None).unwrap();

    let outs = run(
        4,
        NetworkModel::with_latency(Duration::from_micros(100)),
        |rank| {
            let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
            solver.advance_to(rank, &mut u, 0.0, 0.05).unwrap();
            gather_global(rank, &cfg, &u).unwrap()
        },
    );
    let global = outs.into_iter().next().unwrap().unwrap();
    // Compare interiors.
    for c in 0..5 {
        for j in 0..64 {
            for i in 0..64 {
                let a = global.at(c, i, j, 0);
                let b = u_ref.at(c, i + 3, j + 3, 0);
                assert_eq!(a, b, "mismatch at c={c} ({i},{j})");
            }
        }
    }
}

#[test]
fn device_full_problem_matches_host() {
    let prob = Problem::blast_wave_1();
    let scheme = sod_scheme();
    let geom = PatchGeom::line(128, 0.0, 1.0, scheme.required_ghosts());
    let u0 = init_cons(geom, &scheme.eos, &|x| (prob.ic)(x));

    let mut u_host = u0.clone();
    let mut host = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk3, geom);
    host.advance_to(&mut u_host, 0.0, 0.1, 0.4, None).unwrap();

    let dev = DevicePatchSolver::new(
        AcceleratorConfig {
            compute_threads: 2,
            launch_overhead: Duration::ZERO,
            copy_bandwidth: f64::INFINITY,
            throughput_multiplier: 4.0,
            name: "itest-dev".to_string(),
        },
        scheme,
        prob.bcs,
        RkOrder::Rk3,
        geom,
    );
    dev.upload(&u0).get();
    dev.advance_to(0.0, 0.1, 0.4);
    assert_eq!(dev.download().raw(), u_host.raw());
    // The modeled device clock advanced.
    assert!(dev.device_time() > Duration::ZERO);
}

#[test]
fn gang_pool_step_equals_serial_on_2d_riemann() {
    let prob = Problem::riemann_2d();
    let scheme = sod_scheme();
    let geom = PatchGeom::rect([48, 48], [0.0; 2], [1.0; 2], scheme.required_ghosts());
    let mut a = init_cons(geom, &scheme.eos, &|x| (prob.ic)(x));
    let mut b = a.clone();
    let pool = WorkStealingPool::new(3);
    let mut s1 = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk2, geom);
    let mut s2 = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk2, geom);
    s1.advance_to(&mut a, 0.0, 0.05, 0.4, None).unwrap();
    s2.advance_to(&mut b, 0.0, 0.05, 0.4, Some(&pool)).unwrap();
    assert_eq!(a.raw(), b.raw());
}

#[test]
fn three_dimensional_blast_is_spherically_symmetric() {
    // A centered 3D blast in a cube: the density field must stay
    // symmetric under the 48 cube symmetries (here checked for axis
    // swaps and reflections through the center).
    let scheme = sod_scheme();
    let n = 24;
    let geom = PatchGeom::cube([n, n, n], [0.0; 3], [1.0; 3], scheme.required_ghosts());
    let ic = |x: [f64; 3]| {
        let r2: f64 = x.iter().map(|&c| (c - 0.5) * (c - 0.5)).sum();
        Prim::at_rest(1.0, if r2 < 0.03 { 20.0 } else { 1.0 })
    };
    let mut u = init_cons(geom, &scheme.eos, &ic);
    let mut solver = PatchSolver::new(scheme, bc::uniform(Bc::Outflow), RkOrder::Rk2, geom);
    solver.advance_to(&mut u, 0.0, 0.08, 0.4, None).unwrap();
    // The dimension-by-dimension sweeps accumulate flux differences in
    // x,y,z order, so symmetry holds only to (amplified) round-off, not
    // bitwise; a 1e-6 relative tolerance bounds the asymmetry growth.
    let g = scheme.required_ghosts();
    let at = |i: usize, j: usize, k: usize| u.at(0, i + g, j + g, k + g);
    let mut max_asym = 0.0f64;
    for k in 0..n {
        for j in 0..n {
            for i in 0..n {
                let v = at(i, j, k);
                max_asym = max_asym
                    .max((v - at(j, i, k)).abs()) // swap xy
                    .max((v - at(k, j, i)).abs()) // swap xz
                    .max((v - at(n - 1 - i, j, k)).abs()); // reflect x
            }
        }
    }
    assert!(max_asym < 1e-6, "blast asymmetry {max_asym}");
}

#[test]
fn reflecting_wall_bounces_flow() {
    // Flow toward a reflecting wall must bounce: total |Sx| momentum
    // reverses sign over the bounce, D is conserved.
    let scheme = sod_scheme();
    let geom = PatchGeom::line(64, 0.0, 1.0, scheme.required_ghosts());
    let ic = |_: [f64; 3]| Prim::new_1d(1.0, 0.5, 1.0);
    let mut u = init_cons(geom, &scheme.eos, &ic);
    let d0 = u.interior_integral(0);
    let mut solver = PatchSolver::new(scheme, bc::uniform(Bc::Reflect), RkOrder::Rk2, geom);
    solver.advance_to(&mut u, 0.0, 1.2, 0.4, None).unwrap();
    let d1 = u.interior_integral(0);
    assert!(
        (d1 - d0).abs() < 1e-10 * d0,
        "reflecting walls must conserve mass: {d0} -> {d1}"
    );
    // After bouncing off the right wall the bulk momentum is leftward.
    let sx: f64 = u.interior_integral(1);
    assert!(sx < 0.0, "bulk momentum should have reversed, Sx = {sx}");
}

#[test]
fn virtual_cluster_reports_consistent_stats() {
    let scheme = sod_scheme();
    let ic = |x: [f64; 3]| Prim::new_1d(1.0 + 0.3 * (std::f64::consts::TAU * x[0]).sin(), 0.4, 1.0);
    let cfg = DistConfig {
        scheme,
        rk: RkOrder::Rk2,
        global_n: [128, 1, 1],
        domain: ([0.0; 3], [1.0, 1.0, 1.0]),
        decomp: CartDecomp::line(4, true),
        bcs: bc::uniform(Bc::Periodic),
        cfl: 0.4,
        mode: ExchangeMode::BulkSynchronous,
        gang_threads: 0,
        dt_refresh_interval: 2,
    };
    let stats = run(
        4,
        NetworkModel::virtual_cluster(Duration::from_micros(10), 1e9),
        |rank| {
            let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
            solver.advance_steps(rank, &mut u, 6).unwrap()
        },
    );
    for st in &stats {
        assert_eq!(st.steps, 6);
        assert!(st.vtime > 0.0, "virtual time must accumulate");
        assert!(st.bytes_sent > 0);
    }
}

#[test]
fn checkpoint_restart_is_bit_identical() {
    // Run Sod to t=0.2, checkpoint, restart, continue to t=0.4: the
    // result must equal the uninterrupted run bitwise.
    let prob = Problem::sod();
    let scheme = sod_scheme();
    let geom = PatchGeom::line(128, 0.0, 1.0, scheme.required_ghosts());

    let mut u_full = init_cons(geom, &scheme.eos, &|x| (prob.ic)(x));
    let mut s_full = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk3, geom);
    s_full.advance_to(&mut u_full, 0.0, 0.2, 0.4, None).unwrap();
    // Snapshot mid-flight.
    let ckp = rhrsc::io::Checkpoint {
        time: 0.2,
        step: 0,
        field: u_full.clone(),
    };
    let path = std::env::temp_dir().join("rhrsc-restart-test.ckp");
    rhrsc::io::save_checkpoint(&path, &ckp).unwrap();
    s_full.advance_to(&mut u_full, 0.2, 0.4, 0.4, None).unwrap();

    // Restarted run (fresh solver, loaded state).
    let loaded = rhrsc::io::load_checkpoint(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(loaded.time, 0.2);
    let mut u_restart = loaded.field;
    let mut s_restart = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk3, geom);
    s_restart
        .advance_to(&mut u_restart, loaded.time, 0.4, 0.4, None)
        .unwrap();

    assert_eq!(
        u_full.raw(),
        u_restart.raw(),
        "restart must be bit-identical"
    );
}

#[test]
fn spherical_1d_blast_matches_3d_cartesian_shock_radius() {
    // The 1D spherical-coordinate solver must place the blast's shock
    // front where the full 3D Cartesian solver does.
    use rhrsc::solver::scheme::Geometry;
    let t_end = 0.12;
    let (p_in, r0) = (30.0, 0.12);

    // --- 1D radial run ---------------------------------------------------
    let prob = Problem::spherical_blast(p_in, r0);
    let scheme_1d = Scheme {
        geometry: Geometry::SphericalRadial,
        ..sod_scheme()
    };
    let n1 = 256;
    let geom1 = PatchGeom::line(n1, 0.0, 0.5, scheme_1d.required_ghosts());
    let mut u1 = init_cons(geom1, &scheme_1d.eos, &|x| (prob.ic)(x));
    let mut s1 = PatchSolver::new(scheme_1d, prob.bcs, RkOrder::Rk3, geom1);
    s1.advance_to(&mut u1, 0.0, t_end, 0.4, None).unwrap();
    let mut prim1 = Field::new(geom1, 5);
    rhrsc::solver::scheme::recover_prims(&scheme_1d, &u1, &mut prim1).unwrap();
    let mut r_shock_1d = 0.0;
    let mut rho_max_1d = 0.0;
    for (i, j, k) in geom1.interior_iter() {
        let rho = prim1.at(0, i, j, k);
        if rho > rho_max_1d {
            rho_max_1d = rho;
            r_shock_1d = geom1.center(i, j, k)[0];
        }
    }

    // --- 3D Cartesian run (coarse) ----------------------------------------
    let scheme_3d = sod_scheme();
    let n3 = 40;
    let geom3 = PatchGeom::cube(
        [n3, n3, n3],
        [-0.5; 3],
        [0.5; 3],
        scheme_3d.required_ghosts(),
    );
    let ic3 = |x: [f64; 3]| {
        let r = (x[0] * x[0] + x[1] * x[1] + x[2] * x[2]).sqrt();
        if r < r0 {
            Prim::at_rest(1.0, p_in)
        } else {
            Prim::at_rest(1.0, 1.0)
        }
    };
    let mut u3 = init_cons(geom3, &scheme_3d.eos, &ic3);
    let mut s3 = PatchSolver::new(scheme_3d, bc::uniform(Bc::Outflow), RkOrder::Rk3, geom3);
    s3.advance_to(&mut u3, 0.0, t_end, 0.4, None).unwrap();
    let mut prim3 = Field::new(geom3, 5);
    rhrsc::solver::scheme::recover_prims(&scheme_3d, &u3, &mut prim3).unwrap();
    // Shock radius along the +x axis through the center.
    let g = scheme_3d.required_ghosts();
    let mid = g + n3 / 2;
    let mut r_shock_3d = 0.0;
    let mut rho_max_3d = 0.0;
    for i in g + n3 / 2..g + n3 {
        let rho = prim3.at(0, i, mid, mid);
        if rho > rho_max_3d {
            rho_max_3d = rho;
            r_shock_3d = prim3.geom().center(i, mid, mid)[0];
        }
    }

    // Coarse 3D grid: agree within a few 3D cells.
    let tol = 3.0 / n3 as f64;
    assert!(
        (r_shock_1d - r_shock_3d).abs() < tol,
        "1D spherical shock at r={r_shock_1d:.4}, 3D at r={r_shock_3d:.4} (tol {tol:.4})"
    );
    // Both runs see a compressed shell.
    assert!(
        rho_max_1d > 1.3 && rho_max_3d > 1.3,
        "{rho_max_1d} {rho_max_3d}"
    );
}
