//! Property-based tests (proptest) on the core physics and data
//! structures: invariants that must hold over the whole physical regime,
//! not just hand-picked cases.

use proptest::prelude::*;
use rhrsc::eos::Eos;
use rhrsc::grid::{bc, Bc, CartDecomp, Field, PatchGeom};
use rhrsc::srhd::flux::{physical_flux, signal_speeds};
use rhrsc::srhd::recon::{Limiter, Recon};
use rhrsc::srhd::riemann::exact::ExactRiemann;
use rhrsc::srhd::riemann::RiemannSolver;
use rhrsc::srhd::{cons_to_prim, Con2PrimParams, Dir, Prim};

/// A physical primitive state over a wide regime: ρ and p spanning ten
/// decades, |v| up to Lorentz factors of ~700.
fn arb_prim() -> impl Strategy<Value = Prim> {
    (
        -5.0f64..5.0,     // log10 rho
        -6.0f64..6.0,     // log10 p
        0.0f64..0.999999, // |v|
        0.0f64..std::f64::consts::TAU,
        -1.0f64..1.0, // cos(polar)
    )
        .prop_map(|(lr, lp, v, phi, mu)| {
            let s = (1.0 - mu * mu).sqrt();
            Prim {
                rho: 10f64.powf(lr),
                p: 10f64.powf(lp),
                vel: [v * s * phi.cos(), v * s * phi.sin(), v * mu],
            }
        })
}

/// EOS choices.
fn arb_eos() -> impl Strategy<Value = Eos> {
    prop_oneof![
        Just(Eos::ideal(4.0 / 3.0)),
        Just(Eos::ideal(1.4)),
        Just(Eos::ideal(5.0 / 3.0)),
        Just(Eos::TaubMathews),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn prim_cons_roundtrip(prim in arb_prim(), eos in arb_eos()) {
        let u = prim.to_cons(&eos);
        prop_assert!(u.is_finite());
        let params = Con2PrimParams::default();
        let out = cons_to_prim(&eos, &u, None, &params)
            .map_err(|e| TestCaseError::fail(format!("recovery failed: {e} for {prim:?}")))?;
        let tol = 1e-6;
        prop_assert!((out.rho - prim.rho).abs() <= tol * prim.rho,
            "rho {} vs {}", out.rho, prim.rho);
        // Pressure precision is fundamentally limited by cancellation in
        // eps = (tau + D(1-W) + ...) for cold, fast flows: the achievable
        // absolute error scales with the energy scale times machine eps.
        let p_tol = tol * prim.p + 1e-12 * (u.tau.abs() + u.d);
        prop_assert!((out.p - prim.p).abs() <= p_tol,
            "p {} vs {}", out.p, prim.p);
        for i in 0..3 {
            prop_assert!((out.vel[i] - prim.vel[i]).abs() <= 1e-6,
                "v[{i}] {} vs {}", out.vel[i], prim.vel[i]);
        }
    }

    #[test]
    fn eos_thermodynamic_consistency(prim in arb_prim(), eos in arb_eos()) {
        // h = 1 + eps + p/rho must hold by construction, cs² in (0,1).
        let h = eos.enthalpy(prim.rho, prim.p);
        let eps = eos.eps(prim.rho, prim.p);
        prop_assert!((h - (1.0 + eps + prim.p / prim.rho)).abs() <= 1e-10 * h);
        let cs2 = eos.sound_speed_sq(prim.rho, prim.p);
        prop_assert!(cs2 > 0.0 && cs2 < 1.0, "cs2 = {cs2}");
        // Pressure/eps inverse pair.
        let p2 = eos.pressure(prim.rho, eps);
        prop_assert!((p2 - prim.p).abs() <= 1e-9 * prim.p);
    }

    #[test]
    fn signal_speeds_causal_and_ordered(prim in arb_prim(), eos in arb_eos()) {
        for dir in Dir::ALL {
            let (lm, lp) = signal_speeds(&eos, &prim, dir);
            prop_assert!((-1.0..=1.0).contains(&lm), "lm = {lm}");
            prop_assert!((-1.0..=1.0).contains(&lp), "lp = {lp}");
            let vn = prim.vn(dir);
            prop_assert!(lm <= vn + 1e-12 && vn <= lp + 1e-12,
                "ordering lm={lm} vn={vn} lp={lp}");
        }
    }

    #[test]
    fn riemann_consistency_and_finiteness(
        l in arb_prim(),
        r in arb_prim(),
        eos in arb_eos(),
    ) {
        for rs in RiemannSolver::ALL {
            // Consistency: F(U, U) = F(U).
            let fc = rs.flux(&eos, &l, &l, Dir::X);
            let fp = physical_flux(&eos, &l, Dir::X);
            let scale = fp.max_norm().max(1.0);
            prop_assert!((fc - fp).max_norm() <= 1e-9 * scale, "{} consistency", rs.name());
            // Finiteness across arbitrary jumps.
            let f = rs.flux(&eos, &l, &r, Dir::X);
            prop_assert!(f.is_finite(), "{} non-finite flux", rs.name());
        }
    }

    #[test]
    fn exact_riemann_star_state_valid(
        rho_l in 0.01f64..10.0, p_l in 0.01f64..100.0, v_l in -0.9f64..0.9,
        rho_r in 0.01f64..10.0, p_r in 0.01f64..100.0, v_r in -0.9f64..0.9,
    ) {
        let l = Prim::new_1d(rho_l, v_l, p_l);
        let r = Prim::new_1d(rho_r, v_r, p_r);
        match ExactRiemann::solve(&l, &r, 5.0 / 3.0) {
            Ok(sol) => {
                prop_assert!(sol.p_star > 0.0);
                prop_assert!(sol.v_star.abs() < 1.0);
                prop_assert!(sol.rho_star_l > 0.0 && sol.rho_star_r > 0.0);
                // Wave ordering: left wave <= contact <= right wave.
                prop_assert!(sol.left_wave.head <= sol.v_star + 1e-9);
                prop_assert!(sol.v_star <= sol.right_wave.head.max(sol.right_wave.tail) + 1e-9);
                // Sampling far upstream/downstream returns the inputs.
                let sl = sol.sample(-0.999999);
                prop_assert!((sl.rho - rho_l).abs() < 1e-9);
                let sr = sol.sample(0.999999);
                prop_assert!((sr.rho - rho_r).abs() < 1e-9);
            }
            Err(_) => {
                // Vacuum generation is legitimate for strongly receding
                // flows only.
                prop_assert!(v_r - v_l > 0.0, "unexpected solve failure");
            }
        }
    }

    #[test]
    fn limiters_are_tvd(a in -10.0f64..10.0, b in -10.0f64..10.0) {
        for lim in Limiter::ALL {
            let s = lim.slope(a, b);
            if a * b <= 0.0 {
                prop_assert_eq!(s, 0.0, "{} must vanish at extrema", lim.name());
            } else {
                // |s| <= 2 min(|a|, |b|) (TVD region) and sign matches.
                prop_assert!(s.abs() <= 2.0 * a.abs().min(b.abs()) + 1e-12);
                prop_assert!(s * a >= 0.0);
            }
        }
    }

    #[test]
    fn reconstruction_bounded_by_stencil(
        vals in prop::collection::vec(-5.0f64..5.0, 16),
    ) {
        // Monotonized schemes never create values outside the stencil's
        // range.
        for r in [Recon::Pc, Recon::Plm(Limiter::Mc), Recon::Ppm] {
            let g = r.ghost();
            let n = vals.len();
            let mut ql = vec![0.0; n + 1];
            let mut qr = vec![0.0; n + 1];
            r.pencil(&vals, g, n + 1 - g, &mut ql, &mut qr);
            let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            for j in g..n + 1 - g {
                prop_assert!(ql[j] >= lo - 1e-9 && ql[j] <= hi + 1e-9,
                    "{} ql[{j}] = {} outside [{lo},{hi}]", r.name(), ql[j]);
                prop_assert!(qr[j] >= lo - 1e-9 && qr[j] <= hi + 1e-9,
                    "{} qr[{j}] = {}", r.name(), qr[j]);
            }
        }
    }

    #[test]
    fn decomposition_tiles_any_grid(
        px in 1usize..5, py in 1usize..4, pz in 1usize..3,
        nx in 8usize..40, ny in 6usize..30, nz in 4usize..20,
    ) {
        let d = CartDecomp { dims: [px, py, pz], periodic: [true, false, true] };
        let n = [nx.max(px), ny.max(py), nz.max(pz)];
        let mut covered = vec![0u8; n[0] * n[1] * n[2]];
        for rank in 0..d.nranks() {
            let (off, size) = d.local_span(n, rank);
            for k in 0..size[2] {
                for j in 0..size[1] {
                    for i in 0..size[0] {
                        covered[((off[2] + k) * n[1] + off[1] + j) * n[0] + off[0] + i] += 1;
                    }
                }
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1), "gaps or overlaps");
        // Neighbor symmetry.
        for rank in 0..d.nranks() {
            for dim in 0..3 {
                for side in 0..2 {
                    if let Some(nb) = d.neighbor(rank, dim, side) {
                        prop_assert_eq!(d.neighbor(nb, dim, 1 - side), Some(rank));
                    }
                }
            }
        }
    }

    #[test]
    fn periodic_ghost_fill_wraps_exactly(
        n in 6usize..24,
        seed in 0u64..1000,
    ) {
        let g = PatchGeom::line(n, 0.0, 1.0, 3);
        let mut f = Field::new(g, 5);
        // Deterministic pseudo-random interior.
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        for c in 0..5 {
            for i in 0..n {
                state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                f.set(c, 3 + i, 0, 0, (state >> 11) as f64 / (1u64 << 53) as f64);
            }
        }
        bc::fill_ghosts(&mut f, &bc::uniform(Bc::Periodic));
        for c in 0..5 {
            for gi in 0..3 {
                prop_assert_eq!(f.at(c, gi, 0, 0), f.at(c, gi + n, 0, 0));
                prop_assert_eq!(f.at(c, 3 + n + gi, 0, 0), f.at(c, 3 + gi, 0, 0));
            }
        }
    }

    #[test]
    fn boost_composition_is_associative_enough(
        v1 in -0.99f64..0.99,
        v2 in -0.99f64..0.99,
        prim in arb_prim(),
    ) {
        // Boosting by v1 then v2 equals boosting by the composed velocity
        // for purely-x motion.
        let p0 = Prim::new_1d(prim.rho, 0.0, prim.p);
        let a = p0.boosted(v1, Dir::X).boosted(v2, Dir::X);
        let v12 = (v1 + v2) / (1.0 + v1 * v2);
        let b = p0.boosted(v12, Dir::X);
        prop_assert!((a.vel[0] - b.vel[0]).abs() < 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn riemann_mirror_symmetry_random(l in arb_prim(), r in arb_prim()) {
        // Mirroring x -> -x negates D/tau fluxes and preserves the normal
        // momentum flux, for arbitrary states and every solver.
        let eos = Eos::ideal(5.0 / 3.0);
        let mirror = |p: &Prim| Prim {
            rho: p.rho,
            vel: [-p.vel[0], p.vel[1], p.vel[2]],
            p: p.p,
        };
        for rs in RiemannSolver::ALL {
            let f = rs.flux(&eos, &l, &r, Dir::X);
            let fm = rs.flux(&eos, &mirror(&r), &mirror(&l), Dir::X);
            let scale = f.max_norm().max(fm.max_norm()).max(1.0);
            prop_assert!((f.d + fm.d).abs() <= 1e-9 * scale, "{} D", rs.name());
            prop_assert!((f.tau + fm.tau).abs() <= 1e-9 * scale, "{} tau", rs.name());
            prop_assert!((f.s[0] - fm.s[0]).abs() <= 1e-9 * scale, "{} Sx", rs.name());
        }
    }

    #[test]
    fn tm_gamma_eff_between_limits(prim in arb_prim()) {
        let g = Eos::TaubMathews.gamma_eff(prim.rho, prim.p);
        prop_assert!((4.0 / 3.0 - 1e-9..=5.0 / 3.0 + 1e-9).contains(&g), "gamma_eff {g}");
    }

    #[test]
    fn checkpoint_roundtrip_random(
        n in 2usize..20,
        seed in 0u64..10_000,
        time in 0.0f64..1e3,
        step in 0u64..1_000_000,
    ) {
        use rhrsc::io::checkpoint::{decode, encode};
        let geom = PatchGeom::line(n, 0.0, 1.0, 3);
        let mut field = Field::cons(geom);
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        for v in field.raw_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *v = f64::from_bits((state >> 12) | 0x3ff0000000000000);
        }
        let ckp = rhrsc::io::Checkpoint { time, step, field };
        let out = decode(&encode(&ckp)).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(out, ckp);
    }

    #[test]
    fn max_signal_speed_bounds_all_directions(prim in arb_prim(), eos in arb_eos()) {
        let m = rhrsc::srhd::flux::max_signal_speed(&eos, &prim);
        prop_assert!(m <= 1.0);
        for dir in Dir::ALL {
            let (lm, lp) = signal_speeds(&eos, &prim, dir);
            prop_assert!(m >= lm.abs() - 1e-14 && m >= lp.abs() - 1e-14);
        }
    }

    #[test]
    fn weighted_plan_never_worse_than_static(
        n_tiles in 1usize..60,
        speed in 1.0f64..16.0,
        seed in 0u64..1000,
    ) {
        use rhrsc::runtime::{plan_static, plan_weighted};
        use rhrsc::runtime::sched::predicted_makespan;
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        let costs: Vec<f64> = (0..n_tiles).map(|_| {
            state = state.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            1.0 + (state >> 11) as f64 / (1u64 << 53) as f64 * 9.0
        }).collect();
        let speeds = [1.0, speed];
        let m_s = predicted_makespan(&plan_static(n_tiles, 2), &costs, &speeds);
        let m_w = predicted_makespan(&plan_weighted(&costs, &speeds), &costs, &speeds);
        prop_assert!(m_w <= m_s + 1e-12, "weighted {m_w} vs static {m_s}");
    }
}

// SMR cases are expensive (full solver advances); a small dedicated case
// budget keeps the suite fast while still fuzzing the refinement layout.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn smr_conserves_for_random_layouts(
        lo in 2usize..20,
        width in 4usize..30,
        amp in 0.05f64..0.45,
        v in -0.7f64..0.7,
    ) {
        use rhrsc::solver::smr::SmrSolver;
        use rhrsc::solver::{RkOrder, Scheme};
        let n = 64;
        let hi = (lo + width).min(n - 2);
        prop_assume!(hi > lo);
        let scheme = Scheme::default_with_gamma(5.0 / 3.0);
        let mut smr = SmrSolver::new(
            scheme,
            bc::uniform(Bc::Periodic),
            RkOrder::Rk2,
            n,
            0.0,
            1.0,
            lo,
            hi,
        );
        smr.init(&move |x: [f64; 3]| {
            Prim::new_1d(1.0 + amp * (2.0 * std::f64::consts::PI * x[0]).sin(), v, 1.0)
        });
        let before = smr.composite_totals();
        smr.advance_to(0.0, 0.05, 0.4).map_err(|e| {
            TestCaseError::fail(format!("solver failed: {e}"))
        })?;
        let after = smr.composite_totals();
        for c in 0..5 {
            prop_assert!(
                (after[c] - before[c]).abs() <= 1e-12 * before[c].abs().max(1.0),
                "component {c}: {} -> {} (lo={lo} hi={hi})",
                before[c], after[c]
            );
        }
    }

    #[test]
    fn prolong_restrict_roundtrip_preserves_cell_sums(
        lo in 0usize..8,
        width in 2usize..8,
        seed in 0u64..10_000,
    ) {
        // Conservative prolongation puts children at u0 ∓ s/4, so the two
        // children of every parent cell must average back to it (exactly
        // up to one rounding each) for *arbitrary* coarse data — the
        // invariant AMR regridding and ghost filling rely on.
        use rhrsc::solver::refine::{prolong_span, restrict_onto};
        let ng = 3;
        let n_c = 16;
        let geom_c = PatchGeom::line(n_c, 0.0, 1.0, ng);
        let mut src = Field::cons(geom_c);
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        for v in src.raw_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *v = f64::from_bits((state >> 12) | 0x3ff0000000000000); // [1, 2)
        }
        let hi = lo + width;
        let n_f = 2 * width;
        let geom_f = PatchGeom::line(n_f, 0.0, 1.0, ng);
        let mut fine = Field::cons(geom_f);
        prolong_span(&src, &mut fine, ng, ng, lo, 0, n_f as i64);
        let mut back = Field::cons(geom_c);
        restrict_onto(&fine, &mut back, ng, ng, n_f, lo);
        for ic in lo..hi {
            let want = src.get_cons(ng + ic, 0, 0).to_array();
            let got = back.get_cons(ng + ic, 0, 0).to_array();
            for c in 0..5 {
                prop_assert!(
                    (want[c] - got[c]).abs() <= 1e-13 * want[c].abs().max(1.0),
                    "cell {ic} comp {c}: {} vs {}", want[c], got[c]
                );
            }
        }
    }

    #[test]
    fn amr_step_with_refluxing_conserves(
        amp in 0.05f64..0.45,
        v in -0.7f64..0.7,
        threshold in 0.05f64..0.4,
    ) {
        // Full multi-level Berger-Oliger steps with refluxing and
        // regridding on a periodic domain: the composite D/S/tau
        // integrals must hold to machine precision for any refinement
        // layout the estimator produces.
        use rhrsc::solver::amr::{AmrConfig, AmrSolver};
        use rhrsc::solver::{RkOrder, Scheme};
        let scheme = Scheme::default_with_gamma(5.0 / 3.0);
        let cfg = AmrConfig { threshold, ..AmrConfig::default() };
        let mut amr = AmrSolver::new(
            scheme,
            bc::uniform(Bc::Periodic),
            RkOrder::Rk3,
            64,
            0.0,
            1.0,
            cfg,
        );
        amr.init(&move |x: [f64; 3]| {
            let g = (-((x[0] - 0.5) / 0.1).powi(2)).exp();
            Prim::new_1d(1.0 + amp * g, v, 1.0 + 10.0 * amp * g)
        });
        let before = amr.composite_totals();
        amr.advance_to(0.0, 0.05, 0.4).map_err(|e| {
            TestCaseError::fail(format!("solver failed: {e}"))
        })?;
        let after = amr.composite_totals();
        for c in 0..5 {
            prop_assert!(
                (after[c] - before[c]).abs() <= 1e-12 * before[c].abs().max(1.0),
                "component {c}: {} -> {} (threshold={threshold})",
                before[c], after[c]
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn sfc_partitioner_covers_contiguously_and_balances(
        patches in prop::collection::vec((0usize..4, 2usize..33), 48),
        take in 1usize..49,
        nparts in 1usize..9,
    ) {
        // The distributed-AMR partitioner over randomized hierarchies
        // (patch = (level, n/2 interior pairs)): every patch lands in
        // exactly one segment, segments are contiguous in SFC order, and
        // the heaviest rank carries at most the ideal share plus one
        // patch (the tight bound for contiguous partitions).
        use rhrsc::solver::amr_dist::{partition_contiguous, patch_cost};
        let costs: Vec<f64> = patches[..take]
            .iter()
            .map(|&(l, half_n)| patch_cost(l, 2 * half_n))
            .collect();
        let parts = partition_contiguous(&costs, nparts);
        prop_assert_eq!(parts.len(), costs.len(), "every patch assigned once");
        for w in parts.windows(2) {
            prop_assert!(w[0] <= w[1], "segments must be contiguous: {:?}", parts);
        }
        let mut per = vec![0.0f64; nparts];
        for (i, &p) in parts.iter().enumerate() {
            prop_assert!(p < nparts, "part index {p} out of range");
            per[p] += costs[i];
        }
        let total: f64 = costs.iter().sum();
        let max_item = costs.iter().cloned().fold(0.0, f64::max);
        let bound = total / nparts as f64 + max_item + 1e-9 * total.max(1.0);
        for (p, &c) in per.iter().enumerate() {
            prop_assert!(
                c <= bound,
                "part {p} carries {c} > ideal {} + heaviest patch {max_item}",
                total / nparts as f64
            );
        }
    }

    #[test]
    fn sfc_key_orders_parents_before_children(
        lo in 0usize..1000,
        level in 0usize..7,
    ) {
        // A patch's SFC key never exceeds its children's: ancestors sort
        // first, so contiguous segments keep subtrees together.
        use rhrsc::solver::amr_dist::sfc_key;
        let max_levels = 8;
        let parent = sfc_key(level, lo, max_levels);
        for child_lo in [2 * lo, 2 * lo + 2] {
            let child = sfc_key(level + 1, child_lo, max_levels);
            prop_assert!(parent <= child, "{parent:?} > {child:?}");
        }
    }
}
