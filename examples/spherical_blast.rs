//! Spherically-symmetric relativistic blast wave in 1D radial coordinates.
//!
//! Demonstrates the curvilinear-geometry support: the same blast is run
//! (a) in 1D spherical coordinates with geometric source terms and
//! (b) as a full 3D Cartesian simulation, and the radial profiles are
//! compared. The 1D run resolves the same physics at a tiny fraction of
//! the cost — the standard symmetry-reduction workflow.
//!
//! ```text
//! cargo run --release --example spherical_blast
//! ```

use rhrsc::grid::{bc, Bc, PatchGeom};
use rhrsc::solver::problems::Problem;
use rhrsc::solver::scheme::{init_cons, prim_at, recover_prims, Geometry, Scheme};
use rhrsc::solver::{PatchSolver, RkOrder};
use rhrsc::srhd::Prim;
use std::io::Write;

fn main() {
    let t_end = 0.12;
    let (p_in, r0) = (30.0, 0.12);
    println!("# Spherical relativistic blast: p_in = {p_in}, r0 = {r0}, t = {t_end}");

    // --- 1D spherical run --------------------------------------------------
    let prob = Problem::spherical_blast(p_in, r0);
    let scheme1 = Scheme {
        geometry: Geometry::SphericalRadial,
        ..Scheme::default_with_gamma(5.0 / 3.0)
    };
    let n1 = 400;
    let geom1 = PatchGeom::line(n1, 0.0, 0.5, scheme1.required_ghosts());
    let mut u1 = init_cons(geom1, &scheme1.eos, &|x| (prob.ic)(x));
    let t0 = std::time::Instant::now();
    let mut s1 = PatchSolver::new(scheme1, prob.bcs, RkOrder::Rk3, geom1);
    s1.advance_to(&mut u1, 0.0, t_end, 0.4, None).unwrap();
    let wall_1d = t0.elapsed();
    let mut prim1 = rhrsc::grid::Field::new(geom1, 5);
    recover_prims(&scheme1, &u1, &mut prim1).unwrap();

    // --- 3D Cartesian reference (coarse) ------------------------------------
    let scheme3 = Scheme::default_with_gamma(5.0 / 3.0);
    let n3 = 40;
    let geom3 = PatchGeom::cube([n3, n3, n3], [-0.5; 3], [0.5; 3], scheme3.required_ghosts());
    let ic3 = |x: [f64; 3]| {
        let r = (x[0] * x[0] + x[1] * x[1] + x[2] * x[2]).sqrt();
        if r < r0 {
            Prim::at_rest(1.0, p_in)
        } else {
            Prim::at_rest(1.0, 1.0)
        }
    };
    let mut u3 = init_cons(geom3, &scheme3.eos, &ic3);
    let t0 = std::time::Instant::now();
    let mut s3 = PatchSolver::new(scheme3, bc::uniform(Bc::Outflow), RkOrder::Rk3, geom3);
    s3.advance_to(&mut u3, 0.0, t_end, 0.4, None).unwrap();
    let wall_3d = t0.elapsed();
    let mut prim3 = rhrsc::grid::Field::new(geom3, 5);
    recover_prims(&scheme3, &u3, &mut prim3).unwrap();

    println!("# 1D spherical ({n1} zones):   {wall_1d:.2?}");
    println!("# 3D Cartesian ({n3}^3 zones): {wall_3d:.2?}");
    println!(
        "# symmetry reduction speedup: {:.0}x",
        wall_3d.as_secs_f64() / wall_1d.as_secs_f64()
    );

    // Radial profiles: 1D directly; 3D along the +x axis.
    std::fs::create_dir_all("results").unwrap();
    let mut f =
        std::io::BufWriter::new(std::fs::File::create("results/spherical_blast.csv").unwrap());
    writeln!(f, "r,rho_1d,p_1d,rho_3d_axis,p_3d_axis").unwrap();
    let g3 = scheme3.required_ghosts();
    let mid = g3 + n3 / 2;
    for (i, j, k) in geom1.interior_iter() {
        let r = geom1.center(i, j, k)[0];
        let w1 = prim_at(&prim1, i, j, k);
        // Nearest 3D cell along +x.
        let fi = ((r + 0.5) / (1.0 / n3 as f64) - 0.5).round() as usize;
        let (rho3, p3) = if (n3 / 2..n3).contains(&fi) {
            let w3 = prim_at(&prim3, g3 + fi, mid, mid);
            (w3.rho, w3.p)
        } else {
            (f64::NAN, f64::NAN)
        };
        writeln!(f, "{r},{},{},{rho3},{p3}", w1.rho, w1.p).unwrap();
    }
    println!("# wrote results/spherical_blast.csv");

    // Shock positions agree?
    let shock_r = |prim: &rhrsc::grid::Field, along_axis: bool| -> f64 {
        let mut best = (0.0f64, 0.0f64);
        if along_axis {
            for i in g3 + n3 / 2..g3 + n3 {
                let rho = prim.at(0, i, mid, mid);
                if rho > best.0 {
                    best = (rho, prim.geom().center(i, mid, mid)[0]);
                }
            }
        } else {
            for (i, j, k) in prim.geom().interior_iter() {
                let rho = prim.at(0, i, j, k);
                if rho > best.0 {
                    best = (rho, prim.geom().center(i, j, k)[0]);
                }
            }
        }
        best.1
    };
    let r1 = shock_r(&prim1, false);
    let r3 = shock_r(&prim3, true);
    println!("# shock radius: 1D = {r1:.4}, 3D = {r3:.4}");
    assert!((r1 - r3).abs() < 3.0 / n3 as f64, "shock radii disagree");
    println!("# OK");
}
