//! Checkpoint/restart workflow.
//!
//! Advances a blast-wave run halfway, writes a CRC-protected binary
//! checkpoint, reloads it into a fresh solver, finishes the run, and
//! verifies the result is **bit-identical** to an uninterrupted run —
//! the property long production campaigns depend on.
//!
//! ```text
//! cargo run --release --example checkpoint_restart
//! ```

use rhrsc::grid::PatchGeom;
use rhrsc::io::{load_checkpoint, save_checkpoint, Checkpoint};
use rhrsc::solver::problems::Problem;
use rhrsc::solver::scheme::init_cons;
use rhrsc::solver::{PatchSolver, RkOrder, Scheme};

fn main() {
    let prob = Problem::blast_wave_1();
    let scheme = Scheme::default_with_gamma(5.0 / 3.0);
    let n = 400;
    let geom = PatchGeom::line(n, 0.0, 1.0, scheme.required_ghosts());
    let t_mid = 0.2;

    println!("# Checkpoint/restart on blast wave 1, N = {n}");

    // Reference run in one process, pausing at the same t_mid (the CFL
    // controller clamps a step to land exactly on a stop time, so pausing
    // is itself part of the deterministic trajectory).
    let mut u_ref = init_cons(geom, &scheme.eos, &|x| (prob.ic)(x));
    let mut s_ref = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk3, geom);
    s_ref.advance_to(&mut u_ref, 0.0, t_mid, 0.4, None).unwrap();
    s_ref
        .advance_to(&mut u_ref, t_mid, prob.t_end, 0.4, None)
        .unwrap();

    // Run to the midpoint, checkpoint, drop everything.
    let mut u = init_cons(geom, &scheme.eos, &|x| (prob.ic)(x));
    let mut solver = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk3, geom);
    let steps_a = solver.advance_to(&mut u, 0.0, t_mid, 0.4, None).unwrap();
    std::fs::create_dir_all("results").unwrap();
    let path = std::path::Path::new("results/blast1_mid.ckp");
    save_checkpoint(
        path,
        &Checkpoint {
            time: t_mid,
            step: steps_a as u64,
            field: u,
        },
    )
    .unwrap();
    drop(solver);
    println!(
        "# wrote {} ({} bytes) at t = {t_mid} after {steps_a} steps",
        path.display(),
        std::fs::metadata(path).unwrap().len()
    );

    // Fresh process-equivalent restart.
    let ckp = load_checkpoint(path).unwrap();
    println!("# restored t = {}, step = {}", ckp.time, ckp.step);
    let mut u = ckp.field;
    let mut solver = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk3, geom);
    let steps_b = solver
        .advance_to(&mut u, ckp.time, prob.t_end, 0.4, None)
        .unwrap();
    println!("# continued {steps_b} steps to t = {}", prob.t_end);

    assert_eq!(
        u.raw(),
        u_ref.raw(),
        "restarted run must be bit-identical to the in-memory run"
    );
    println!("# restart is bit-identical to the in-memory continuation ✓");
    println!("# OK");
}
