//! Relativistic Kelvin–Helmholtz instability.
//!
//! Evolves a perturbed relativistic shear layer and prints the growth of
//! the transverse-momentum RMS — exponential during the linear phase,
//! saturating as the billows roll up. Writes the time series to
//! `results/khi_growth.csv`.
//!
//! ```text
//! cargo run --release --example kelvin_helmholtz
//! ```

use rhrsc::grid::PatchGeom;
use rhrsc::runtime::WorkStealingPool;
use rhrsc::solver::diag::transverse_momentum_rms;
use rhrsc::solver::problems::Problem;
use rhrsc::solver::scheme::{init_cons, Scheme};
use rhrsc::solver::{PatchSolver, RkOrder};
use std::io::Write;

fn main() {
    let n = 128;
    let prob = Problem::kelvin_helmholtz(0.5, 0.01);
    let scheme = Scheme {
        eos: prob.eos,
        ..Scheme::default_with_gamma(4.0 / 3.0)
    };
    let geom = PatchGeom::rect([n, n], [0.0, 0.0], [1.0, 1.0], scheme.required_ghosts());

    println!("# Relativistic Kelvin-Helmholtz, {n}x{n}, shear v = ±0.5");

    let mut u = init_cons(geom, &scheme.eos, &|x| (prob.ic)(x));
    let pool = WorkStealingPool::new(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
    );
    let mut solver = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk3, geom);

    std::fs::create_dir_all("results").unwrap();
    let mut f = std::io::BufWriter::new(std::fs::File::create("results/khi_growth.csv").unwrap());
    writeln!(f, "t,sy_rms").unwrap();

    let t_end: f64 = 3.5;
    let n_out = 40;
    let mut series = Vec::new();
    println!("{:>8} {:>14}", "t", "Sy_rms");
    for s in 0..=n_out {
        let t_target = t_end * s as f64 / n_out as f64;
        if s > 0 {
            let t_prev = t_end * (s - 1) as f64 / n_out as f64;
            solver
                .advance_to(&mut u, t_prev, t_target, 0.4, Some(&pool))
                .expect("solver failed");
        }
        let rms = transverse_momentum_rms(&u);
        series.push((t_target, rms));
        writeln!(f, "{t_target},{rms}").unwrap();
        if s % 4 == 0 {
            println!("{t_target:>8.3} {rms:>14.6e}");
        }
    }
    println!("# wrote results/khi_growth.csv");

    // Fit the linear-phase growth rate (after the t ≲ 1 acoustic
    // transient, before saturation).
    let early: Vec<(f64, f64)> = series
        .iter()
        .filter(|&&(t, a)| t > 1.5 && t < 3.2 && a > 0.0)
        .map(|&(t, a)| (t, a.ln()))
        .collect();
    let nn = early.len() as f64;
    let sx: f64 = early.iter().map(|p| p.0).sum();
    let sy: f64 = early.iter().map(|p| p.1).sum();
    let sxx: f64 = early.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = early.iter().map(|p| p.0 * p.1).sum();
    let rate = (nn * sxy - sx * sy) / (nn * sxx - sx * sx);
    println!("# linear-phase growth rate ≈ {rate:.3} (e-folds per unit time)");
    assert!(rate > 0.3, "KHI should grow, measured rate {rate}");

    let final_rms = series.last().unwrap().1;
    let initial_rms = series.first().unwrap().1;
    println!(
        "# amplification: {:.1}x",
        final_rms / initial_rms.max(1e-300)
    );
    println!("# OK");
}
