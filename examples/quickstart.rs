//! Quickstart: the relativistic Sod shock tube.
//!
//! Solves the canonical SRHD Riemann problem with PPM + HLLC + SSP-RK3,
//! compares against the exact solution, and prints the density/velocity/
//! pressure profile.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rhrsc::grid::PatchGeom;
use rhrsc::solver::diag::l1_density_error;
use rhrsc::solver::problems::Problem;
use rhrsc::solver::scheme::{init_cons, prim_at};
use rhrsc::solver::{PatchSolver, RkOrder, Scheme};

fn main() {
    let n = 400;
    let prob = Problem::sod();
    let scheme = Scheme::default_with_gamma(5.0 / 3.0);
    let geom = PatchGeom::line(n, 0.0, 1.0, scheme.required_ghosts());

    println!("# Relativistic Sod shock tube");
    println!(
        "# N = {n}, scheme = ppm + hllc + ssp-rk3, t_end = {}",
        prob.t_end
    );

    let mut u = init_cons(geom, &scheme.eos, &|x| (prob.ic)(x));
    let mut solver = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk3, geom);
    let t0 = std::time::Instant::now();
    let steps = solver
        .advance_to(&mut u, 0.0, prob.t_end, 0.4, None)
        .expect("solver failed");
    let elapsed = t0.elapsed();

    let exact = prob.exact.clone().expect("sod has an exact solution");
    let (l1, prim) = l1_density_error(&scheme, &u, &exact, prob.t_end).unwrap();

    println!("# steps = {steps}, wall = {elapsed:.2?}, L1(rho) vs exact = {l1:.4e}");
    println!("#");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "x", "rho", "vx", "p", "rho_exact", "vx_exact", "p_exact"
    );
    for (i, j, k) in geom.interior_iter().step_by(8) {
        let x = geom.center(i, j, k);
        let w = prim_at(&prim, i, j, k);
        let ex = exact(x, prob.t_end);
        println!(
            "{:>10.5} {:>12.6} {:>12.6} {:>12.6} {:>12.6} {:>12.6} {:>12.6}",
            x[0], w.rho, w.vel[0], w.p, ex.rho, ex.vel[0], ex.p
        );
    }
    assert!(l1 < 5e-3, "accuracy regression: L1 = {l1}");
    println!("# OK");
}
