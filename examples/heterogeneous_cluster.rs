//! Heterogeneous-cluster demo: the full stack in one run.
//!
//! 1. Runs a 2D blast problem distributed over four simulated ranks with
//!    a 5 µs / 10 GB/s network, in both bulk-synchronous and futurized
//!    (overlapped) halo-exchange modes, and reports the timings.
//! 2. Offloads the same patch to the simulated accelerator and verifies
//!    the result is bit-identical to the host while reporting throughput.
//!
//! ```text
//! cargo run --release --example heterogeneous_cluster
//! ```

use rhrsc::comm::{run, NetworkModel};
use rhrsc::grid::{bc, Bc, CartDecomp, PatchGeom};
use rhrsc::runtime::AcceleratorConfig;
use rhrsc::solver::device_backend::DevicePatchSolver;
use rhrsc::solver::driver::{gather_global, BlockSolver, DistConfig, ExchangeMode};
use rhrsc::solver::scheme::{init_cons, Scheme};
use rhrsc::solver::{PatchSolver, RkOrder};
use rhrsc::srhd::Prim;
use std::time::Duration;

fn ic(x: [f64; 3]) -> Prim {
    // A relativistic blast in a periodic box.
    let r2 = (x[0] - 0.5).powi(2) + (x[1] - 0.5).powi(2);
    if r2 < 0.01 {
        Prim::at_rest(1.0, 100.0)
    } else {
        Prim::at_rest(1.0, 1.0)
    }
}

fn main() {
    let scheme = Scheme::default_with_gamma(5.0 / 3.0);
    let global_n = [128usize, 128, 1];
    let t_end = 0.05;

    println!("# Part 1: distributed run, 4 ranks, 5us latency / 10 GB/s network");
    let model = NetworkModel {
        latency: Duration::from_micros(5),
        bandwidth: 10e9,
        ..NetworkModel::ideal()
    };
    for mode in [ExchangeMode::BulkSynchronous, ExchangeMode::Overlap] {
        let cfg = DistConfig {
            scheme,
            rk: RkOrder::Rk2,
            global_n,
            domain: ([0.0; 3], [1.0, 1.0, 1.0]),
            decomp: CartDecomp {
                dims: [2, 2, 1],
                periodic: [true, true, false],
            },
            bcs: bc::uniform(Bc::Periodic),
            cfl: 0.4,
            mode,
            gang_threads: 0,
            dt_refresh_interval: 1,
        };
        let stats = run(4, model, |rank| {
            let (mut solver, mut u) = BlockSolver::new(cfg.clone(), rank.rank(), &ic);
            let st = solver.advance_to(rank, &mut u, 0.0, t_end).unwrap();
            let _ = gather_global(rank, &cfg, &u).unwrap();
            st
        });
        let max_t = stats.iter().map(|s| s.elapsed).max().unwrap();
        let total_mb: u64 = stats.iter().map(|s| s.bytes_sent).sum::<u64>() / (1 << 20);
        println!(
            "  mode = {:<10} steps = {:>4} wall = {:>9.2?} halo traffic = {} MiB",
            mode.name(),
            stats[0].steps,
            max_t,
            total_mb
        );
    }

    println!("# Part 2: accelerator offload vs host, same patch");
    let geom = PatchGeom::rect([128, 128], [0.0, 0.0], [1.0, 1.0], scheme.required_ghosts());
    let bcs = bc::uniform(Bc::Periodic);
    let mut u_host = init_cons(geom, &scheme.eos, &ic);
    let u0 = u_host.clone();

    let mut host = PatchSolver::new(scheme, bcs, RkOrder::Rk2, geom);
    let t0 = std::time::Instant::now();
    let host_steps = host.advance_to(&mut u_host, 0.0, t_end, 0.4, None).unwrap();
    let host_wall = t0.elapsed();

    let dev = DevicePatchSolver::new(
        AcceleratorConfig {
            compute_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            launch_overhead: Duration::from_micros(20),
            copy_bandwidth: 8e9,
            throughput_multiplier: 1.0,
            name: "sim-gpu".to_string(),
        },
        scheme,
        bcs,
        RkOrder::Rk2,
        geom,
    );
    dev.upload(&u0).get();
    let t0 = std::time::Instant::now();
    let dev_steps = dev.advance_to(0.0, t_end, 0.4);
    let dev_wall = t0.elapsed();
    let u_dev = dev.download();

    let zones = (128 * 128 * host_steps * 2) as f64; // cells * steps * stages
    println!(
        "  host:   {host_steps} steps, {host_wall:>9.2?}  ({:.2} Mzone-updates/s)",
        zones / host_wall.as_secs_f64() / 1e6
    );
    println!(
        "  device: {dev_steps} steps, {dev_wall:>9.2?}  ({:.2} Mzone-updates/s)",
        zones / dev_wall.as_secs_f64() / 1e6
    );
    assert_eq!(
        u_host.raw(),
        u_dev.raw(),
        "device result must be bit-identical to host"
    );
    println!("  device result is bit-identical to host ✓");
    println!("# OK");
}
