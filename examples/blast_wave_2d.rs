//! 2D relativistic Riemann problem (four-quadrant blast interaction).
//!
//! Evolves the Del Zanna & Bucciantini-style four-state configuration on
//! the unit square — interacting relativistic shocks, contacts, and a jet-
//! like plume along the diagonal — and writes a density snapshot to
//! `results/blast_wave_2d.csv` (x, y, rho rows, loadable by any plotting
//! tool).
//!
//! ```text
//! cargo run --release --example blast_wave_2d
//! ```

use rhrsc::grid::PatchGeom;
use rhrsc::runtime::WorkStealingPool;
use rhrsc::solver::diag::{conservation_drift, conserved_totals, max_lorentz};
use rhrsc::solver::problems::Problem;
use rhrsc::solver::scheme::{init_cons, recover_prims, Scheme};
use rhrsc::solver::{PatchSolver, RkOrder};
use std::io::Write;

fn main() {
    let n = 128;
    let prob = Problem::riemann_2d();
    // The v = 0.99 four-quadrant problem sits at the robustness boundary
    // of non-positivity-preserving HRSC: sharp schemes (HLLC contact
    // restoration, PPM) overshoot at the W ≈ 7 slip lines and evacuate
    // the NE quadrant into a numerical vacuum. HLL + minmod is the
    // standard diffusive setting that evolves it cleanly (cf. the A1
    // limiter ablation; Del Zanna & Bucciantini 2002 make the same
    // trade).
    let scheme = Scheme {
        riemann: rhrsc::srhd::riemann::RiemannSolver::Hll,
        recon: rhrsc::srhd::recon::Recon::Plm(rhrsc::srhd::recon::Limiter::Minmod),
        ..Scheme::default_with_gamma(5.0 / 3.0)
    };
    let geom = PatchGeom::rect([n, n], [0.0, 0.0], [1.0, 1.0], scheme.required_ghosts());

    println!(
        "# 2D relativistic Riemann problem, {n}x{n}, t_end = {}",
        prob.t_end
    );

    let mut u = init_cons(geom, &scheme.eos, &|x| (prob.ic)(x));
    let before = conserved_totals(&u);
    let pool = WorkStealingPool::new(
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
    );
    let mut solver = PatchSolver::new(scheme, prob.bcs, RkOrder::Rk3, geom);

    let t0 = std::time::Instant::now();
    let steps = solver
        .advance_to(&mut u, 0.0, prob.t_end, 0.4, Some(&pool))
        .expect("solver failed");
    let elapsed = t0.elapsed();

    let after = conserved_totals(&u);
    let mut prim = rhrsc::grid::Field::new(geom, 5);
    recover_prims(&scheme, &u, &mut prim).unwrap();
    let w_max = max_lorentz(&prim);

    println!("# steps = {steps}, wall = {elapsed:.2?}");
    println!("# max Lorentz factor in the plume: {w_max:.3}");
    // Outflow boundaries leak mass/energy; report the change, not a drift
    // bound.
    println!(
        "# conserved-total change through outflow boundaries: {:.3e}",
        conservation_drift(&before, &after)
    );

    std::fs::create_dir_all("results").unwrap();
    let mut f =
        std::io::BufWriter::new(std::fs::File::create("results/blast_wave_2d.csv").unwrap());
    writeln!(f, "x,y,rho,p,w").unwrap();
    for (i, j, k) in geom.interior_iter() {
        let c = geom.center(i, j, k);
        let w = rhrsc::solver::scheme::prim_at(&prim, i, j, k);
        writeln!(f, "{},{},{},{},{}", c[0], c[1], w.rho, w.p, w.lorentz()).unwrap();
    }
    println!("# wrote results/blast_wave_2d.csv");

    // Quick-look images and a ParaView-loadable VTK file.
    rhrsc::io::image::write_ppm(
        std::path::Path::new("results/blast_wave_2d_rho.ppm"),
        &prim,
        0,
    )
    .unwrap();
    rhrsc::io::vtk::write_vtk(
        std::path::Path::new("results/blast_wave_2d.vtk"),
        "2D relativistic Riemann problem",
        &prim,
        &[("rho", 0), ("vx", 1), ("vy", 2), ("p", 4)],
    )
    .unwrap();
    println!("# wrote results/blast_wave_2d_rho.ppm and .vtk");

    // Sanity: the jet-like feature along the diagonal accelerates flow.
    assert!(w_max > 1.5, "expected relativistic plume, W_max = {w_max}");
    println!("# OK");
}
